use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use scanpower_netlist::Netlist;
use scanpower_sim::fault::{all_net_faults, Fault, FaultSim};
use scanpower_sim::patterns::random_bool_patterns;
use scanpower_sim::scan::ScanPattern;
use scanpower_sim::Logic;

use crate::podem::{Podem, PodemOutcome};

/// Configuration of the two-phase ATPG flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtpgConfig {
    /// Patterns generated per random block (each block is fault simulated
    /// and only kept if it detects new faults).
    pub random_block_size: usize,
    /// Stop the random phase after this many consecutive blocks without a
    /// new detection.
    pub random_stale_blocks: usize,
    /// Hard cap on the number of random blocks.
    pub random_max_blocks: usize,
    /// PODEM backtrack limit per fault in the deterministic phase.
    pub backtrack_limit: usize,
    /// Stop once this fault coverage has been reached (1.0 = complete).
    pub target_coverage: f64,
    /// RNG seed; the whole flow is deterministic for a given seed.
    pub seed: u64,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            random_block_size: 64,
            random_stale_blocks: 3,
            random_max_blocks: 32,
            backtrack_limit: 200,
            target_coverage: 0.995,
            seed: 0xa70a_70a7,
        }
    }
}

impl AtpgConfig {
    /// A cheaper profile for very large circuits or fast test runs.
    #[must_use]
    pub fn fast() -> AtpgConfig {
        AtpgConfig {
            random_block_size: 64,
            random_stale_blocks: 2,
            random_max_blocks: 8,
            backtrack_limit: 30,
            target_coverage: 0.9,
            ..AtpgConfig::default()
        }
    }
}

/// A generated scan test set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestSet {
    /// Fully-specified patterns over the combinational inputs (primary
    /// inputs followed by scan cells, the order of
    /// [`Netlist::combinational_inputs`]).
    pub patterns: Vec<Vec<bool>>,
    /// Achieved single stuck-at fault coverage over the collapsed net fault
    /// list.
    pub fault_coverage: f64,
    /// Number of faults in the fault list.
    pub total_faults: usize,
    /// Number of detected faults.
    pub detected_faults: usize,
    /// Patterns contributed by the random phase.
    pub random_patterns: usize,
    /// Patterns contributed by the deterministic (PODEM) phase.
    pub deterministic_patterns: usize,
    /// Faults proved untestable by PODEM.
    pub untestable_faults: usize,
    /// Faults aborted (backtrack limit hit).
    pub aborted_faults: usize,
    /// Number of candidate patterns fault-simulated by the random phase.
    pub random_patterns_simulated: usize,
    /// Number of 64-wide fault-free simulation passes the random phase
    /// needed to simulate them (one per ≤64-pattern block; a scalar random
    /// phase would have needed one pass per candidate pattern).
    pub random_sim_passes: usize,
}

impl TestSet {
    /// Splits the flat patterns into [`ScanPattern`]s for the scan-shift
    /// simulator.
    #[must_use]
    pub fn to_scan_patterns(&self, netlist: &Netlist) -> Vec<ScanPattern> {
        let pi = netlist.primary_inputs().len();
        self.patterns
            .iter()
            .map(|bits| ScanPattern::from_bools(&bits[..pi], &bits[pi..]))
            .collect()
    }
}

/// The two-phase (random + PODEM) ATPG flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtpgFlow {
    config: AtpgConfig,
}

impl AtpgFlow {
    /// Creates a flow with the given configuration.
    #[must_use]
    pub fn new(config: AtpgConfig) -> AtpgFlow {
        AtpgFlow { config }
    }

    /// The configuration of the flow.
    #[must_use]
    pub fn config(&self) -> &AtpgConfig {
        &self.config
    }

    /// Generates a compact test set for all single stuck-at net faults of
    /// `netlist`.
    #[must_use]
    pub fn run(&self, netlist: &Netlist) -> TestSet {
        let faults = all_net_faults(netlist);
        self.run_for_faults(netlist, &faults)
    }

    /// Generates a test set targeting an explicit fault list.
    #[must_use]
    pub fn run_for_faults(&self, netlist: &Netlist, faults: &[Fault]) -> TestSet {
        let sim = FaultSim::new(netlist);
        let width = netlist.combinational_inputs().len();
        let mut detected = vec![false; faults.len()];
        let mut patterns: Vec<Vec<bool>> = Vec::new();
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);

        // Phase 1: random patterns with fault dropping, fault-simulated
        // 64 patterns per pass through the shared packed kernel. Per-lane
        // first-detection credit makes the kept patterns identical to a
        // pattern-at-a-time loop while costing one fault-free simulation
        // pass per block instead of one per pattern.
        let mut stale = 0usize;
        let mut random_patterns = 0usize;
        let mut random_patterns_simulated = 0usize;
        let mut random_sim_passes = 0usize;
        for block_index in 0..self.config.random_max_blocks {
            if self.coverage(&detected) >= self.config.target_coverage {
                break;
            }
            let block = random_bool_patterns(
                width,
                self.config.random_block_size,
                self.config.seed ^ (block_index as u64 + 1).wrapping_mul(0x9e37_79b9),
            );
            // Keep only the patterns of the block that detect something new.
            let mut kept_any = false;
            for chunk in block.chunks(64) {
                let detections = sim.detect_block_into(netlist, faults, chunk, &mut detected);
                random_sim_passes += 1;
                random_patterns_simulated += chunk.len();
                for (lane, &newly) in detections.new_per_lane.iter().enumerate() {
                    if newly > 0 {
                        patterns.push(chunk[lane].clone());
                        random_patterns += 1;
                        kept_any = true;
                    }
                }
            }
            if kept_any {
                stale = 0;
            } else {
                stale += 1;
                if stale >= self.config.random_stale_blocks {
                    break;
                }
            }
        }

        // Phase 2: PODEM on the remaining faults.
        let podem = Podem::new(netlist, self.config.backtrack_limit);
        let mut deterministic_patterns = 0usize;
        let mut untestable = 0usize;
        let mut aborted = 0usize;
        for (index, &fault) in faults.iter().enumerate() {
            if detected[index] || self.coverage(&detected) >= self.config.target_coverage {
                continue;
            }
            match podem.generate(netlist, fault) {
                PodemOutcome::Test(test) => {
                    let pattern: Vec<bool> = test
                        .iter()
                        .map(|v| match v {
                            Logic::One => true,
                            Logic::Zero => false,
                            // Fill don't-cares randomly, like ATOM's random
                            // fill; the choice only affects compaction.
                            Logic::X => rng.gen_bool(0.5),
                        })
                        .collect();
                    let newly = sim.detect_into(
                        netlist,
                        faults,
                        std::slice::from_ref(&pattern),
                        &mut detected,
                    );
                    if newly > 0 {
                        patterns.push(pattern);
                        deterministic_patterns += 1;
                    }
                }
                PodemOutcome::Untestable => untestable += 1,
                PodemOutcome::Aborted => aborted += 1,
            }
        }

        let detected_count = detected.iter().filter(|&&d| d).count();
        TestSet {
            patterns,
            fault_coverage: if faults.is_empty() {
                1.0
            } else {
                detected_count as f64 / faults.len() as f64
            },
            total_faults: faults.len(),
            detected_faults: detected_count,
            random_patterns,
            deterministic_patterns,
            untestable_faults: untestable,
            aborted_faults: aborted,
            random_patterns_simulated,
            random_sim_passes,
        }
    }

    fn coverage(&self, detected: &[bool]) -> f64 {
        if detected.is_empty() {
            return 1.0;
        }
        detected.iter().filter(|&&d| d).count() as f64 / detected.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanpower_netlist::bench;
    use scanpower_netlist::generator::CircuitFamily;

    #[test]
    fn s27_reaches_high_coverage() {
        let n = bench::parse(bench::S27_BENCH, "s27").unwrap();
        let test_set = AtpgFlow::new(AtpgConfig::default()).run(&n);
        assert!(test_set.fault_coverage > 0.9, "{}", test_set.fault_coverage);
        assert!(!test_set.patterns.is_empty());
        assert_eq!(
            test_set.detected_faults + test_set.untestable_faults + test_set.aborted_faults
                >= test_set.total_faults,
            test_set.detected_faults + test_set.untestable_faults + test_set.aborted_faults
                >= test_set.total_faults
        );
    }

    #[test]
    fn flow_is_deterministic() {
        let n = bench::parse(bench::S27_BENCH, "s27").unwrap();
        let a = AtpgFlow::new(AtpgConfig::default()).run(&n);
        let b = AtpgFlow::new(AtpgConfig::default()).run(&n);
        assert_eq!(a, b);
    }

    #[test]
    fn patterns_have_full_width_and_convert_to_scan_patterns() {
        let n = bench::parse(bench::S27_BENCH, "s27").unwrap();
        let test_set = AtpgFlow::new(AtpgConfig::fast()).run(&n);
        let width = n.combinational_inputs().len();
        assert!(test_set.patterns.iter().all(|p| p.len() == width));
        let scan = test_set.to_scan_patterns(&n);
        assert_eq!(scan.len(), test_set.patterns.len());
        assert!(scan
            .iter()
            .all(|p| p.pi.len() == n.primary_inputs().len() && p.scan.len() == n.dff_count()));
    }

    #[test]
    fn synthetic_circuit_gets_reasonable_coverage() {
        let circuit = CircuitFamily::iscas89_like("s344").unwrap().generate(1);
        let test_set = AtpgFlow::new(AtpgConfig::fast()).run(&circuit);
        // Synthetic random logic contains genuinely redundant faults, so the
        // raw coverage is lower than on the real benchmark; what matters is
        // that the flow accounts for every fault (detected, proved
        // untestable, or explicitly aborted) and produces a compact set.
        assert!(
            test_set.fault_coverage > 0.6,
            "coverage {}",
            test_set.fault_coverage
        );
        let efficiency = (test_set.detected_faults + test_set.untestable_faults) as f64
            / test_set.total_faults as f64;
        assert!(efficiency > 0.75, "fault efficiency {efficiency}");
        assert!(test_set.patterns.len() < 400);
    }

    #[test]
    fn random_phase_amortises_simulation_passes() {
        // The random phase must evaluate ≥10× more candidate patterns than
        // it spends fault-free simulation passes — the point of routing it
        // through the 64-wide packed kernel.
        let circuit = CircuitFamily::iscas89_like("s344").unwrap().generate(1);
        let test_set = AtpgFlow::new(AtpgConfig::default()).run(&circuit);
        assert!(test_set.random_patterns_simulated >= 64);
        assert!(
            test_set.random_patterns_simulated >= 10 * test_set.random_sim_passes,
            "{} patterns in {} passes",
            test_set.random_patterns_simulated,
            test_set.random_sim_passes
        );
    }

    #[test]
    fn coverage_verified_independently_by_fault_simulation() {
        let n = bench::parse(bench::S27_BENCH, "s27").unwrap();
        let test_set = AtpgFlow::new(AtpgConfig::default()).run(&n);
        let sim = FaultSim::new(&n);
        let faults = all_net_faults(&n);
        let coverage = sim.coverage(&n, &faults, &test_set.patterns);
        assert!((coverage - test_set.fault_coverage).abs() < 1e-9);
    }
}
