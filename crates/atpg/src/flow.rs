use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use scanpower_netlist::Netlist;
use scanpower_sim::fault::{all_net_faults, Fault, FaultSim};
use scanpower_sim::patterns::random_bool_patterns;
use scanpower_sim::scan::ScanPattern;
use scanpower_sim::{BlockDriver, Logic};
use scanpower_wire::{Wire, WireError, WireReader, WireWriter};

use crate::podem::{Podem, PodemOutcome};

/// Configuration of the two-phase ATPG flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtpgConfig {
    /// Patterns generated per random block (each block is fault simulated
    /// and only kept if it detects new faults).
    pub random_block_size: usize,
    /// Stop the random phase after this many consecutive blocks without a
    /// new detection.
    pub random_stale_blocks: usize,
    /// Hard cap on the number of random blocks.
    pub random_max_blocks: usize,
    /// PODEM backtrack limit per fault in the deterministic phase.
    pub backtrack_limit: usize,
    /// Stop once this fault coverage has been reached (1.0 = complete).
    pub target_coverage: f64,
    /// RNG seed; the whole flow is deterministic for a given seed.
    pub seed: u64,
    /// Worker threads for the random phase's block-parallel fault
    /// simulation, resolved by the workspace-wide
    /// [`resolve_worker_threads`](scanpower_sim::parallel::resolve_worker_threads)
    /// policy: `0` = one per available hardware thread (`SCANPOWER_THREADS`
    /// overrides), `1` = the sequential fallback. The generated test set is
    /// bit-identical whatever the thread count.
    pub threads: usize,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            random_block_size: 64,
            random_stale_blocks: 3,
            random_max_blocks: 32,
            backtrack_limit: 200,
            target_coverage: 0.995,
            seed: 0xa70a_70a7,
            threads: 0,
        }
    }
}

/// Canonical wire encoding: fields in declaration order. The ATPG
/// configuration is part of the result-cache key (with `threads` zeroed by
/// the caller, since the generated test set is thread-count invariant).
impl Wire for AtpgConfig {
    fn encode_into(&self, writer: &mut WireWriter) {
        self.random_block_size.encode_into(writer);
        self.random_stale_blocks.encode_into(writer);
        self.random_max_blocks.encode_into(writer);
        self.backtrack_limit.encode_into(writer);
        self.target_coverage.encode_into(writer);
        self.seed.encode_into(writer);
        self.threads.encode_into(writer);
    }
    fn decode_from(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(AtpgConfig {
            random_block_size: usize::decode_from(reader)?,
            random_stale_blocks: usize::decode_from(reader)?,
            random_max_blocks: usize::decode_from(reader)?,
            backtrack_limit: usize::decode_from(reader)?,
            target_coverage: f64::decode_from(reader)?,
            seed: u64::decode_from(reader)?,
            threads: usize::decode_from(reader)?,
        })
    }
}

impl AtpgConfig {
    /// A cheaper profile for very large circuits or fast test runs.
    #[must_use]
    pub fn fast() -> AtpgConfig {
        AtpgConfig {
            random_block_size: 64,
            random_stale_blocks: 2,
            random_max_blocks: 8,
            backtrack_limit: 30,
            target_coverage: 0.9,
            ..AtpgConfig::default()
        }
    }
}

/// A generated scan test set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestSet {
    /// Fully-specified patterns over the combinational inputs (primary
    /// inputs followed by scan cells, the order of
    /// [`Netlist::combinational_inputs`]).
    pub patterns: Vec<Vec<bool>>,
    /// Achieved single stuck-at fault coverage over the collapsed net fault
    /// list.
    pub fault_coverage: f64,
    /// Number of faults in the fault list.
    pub total_faults: usize,
    /// Number of detected faults.
    pub detected_faults: usize,
    /// Patterns contributed by the random phase.
    pub random_patterns: usize,
    /// Patterns contributed by the deterministic (PODEM) phase.
    pub deterministic_patterns: usize,
    /// Faults proved untestable by PODEM.
    pub untestable_faults: usize,
    /// Faults aborted (backtrack limit hit).
    pub aborted_faults: usize,
    /// Number of candidate patterns fault-simulated by the random phase.
    pub random_patterns_simulated: usize,
    /// Number of 64-wide fault-free simulation passes the random phase
    /// needed to simulate them (one per ≤64-pattern block; a scalar random
    /// phase would have needed one pass per candidate pattern).
    pub random_sim_passes: usize,
}

impl TestSet {
    /// Splits the flat patterns into [`ScanPattern`]s for the scan-shift
    /// simulator.
    #[must_use]
    pub fn to_scan_patterns(&self, netlist: &Netlist) -> Vec<ScanPattern> {
        let pi = netlist.primary_inputs().len();
        self.patterns
            .iter()
            .map(|bits| ScanPattern::from_bools(&bits[..pi], &bits[pi..]))
            .collect()
    }
}

/// One speculatively fault-simulated candidate block of the random phase:
/// its generated patterns and, per ≤64-pattern chunk, the frozen-snapshot
/// detecting-lane masks from [`FaultSim::detect_block_lanes`].
type SimulatedBlock = (Vec<Vec<bool>>, Vec<Vec<(usize, u64)>>);

/// The two-phase (random + PODEM) ATPG flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtpgFlow {
    config: AtpgConfig,
}

impl AtpgFlow {
    /// Creates a flow with the given configuration.
    #[must_use]
    pub fn new(config: AtpgConfig) -> AtpgFlow {
        AtpgFlow { config }
    }

    /// The configuration of the flow.
    #[must_use]
    pub fn config(&self) -> &AtpgConfig {
        &self.config
    }

    /// Generates a compact test set for all single stuck-at net faults of
    /// `netlist`.
    #[must_use]
    pub fn run(&self, netlist: &Netlist) -> TestSet {
        let faults = all_net_faults(netlist);
        self.run_for_faults(netlist, &faults)
    }

    /// Generates a test set targeting an explicit fault list.
    #[must_use]
    pub fn run_for_faults(&self, netlist: &Netlist, faults: &[Fault]) -> TestSet {
        let sim = FaultSim::new(netlist);
        let width = netlist.combinational_inputs().len();
        let mut detected = vec![false; faults.len()];
        let mut patterns: Vec<Vec<bool>> = Vec::new();
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);

        // Phase 1: random patterns with fault dropping, fault-simulated 64
        // patterns per pass through the shared packed kernel and sharded
        // across threads by the BlockDriver, one group of candidate blocks
        // per dispatch. Every ≤64-pattern chunk computes its per-fault
        // detecting-lane masks against a frozen snapshot of the detected
        // flags (fault effects are independent of each other, so the masks
        // cannot change while earlier chunks merge); the masks are then
        // merged strictly in pattern order with per-pattern first-detection
        // credit and a per-pattern target-coverage cutoff. The kept test
        // set — and every TestSet counter — is what a pattern-at-a-time
        // loop would have produced, whatever the thread count: speculative
        // chunks such a loop would never have reached are discarded unseen
        // and uncounted.
        let driver = BlockDriver::new(self.config.threads);
        let total_faults = faults.len();
        let target_met = |detected_count: usize| {
            total_faults == 0
                || detected_count as f64 / total_faults as f64 >= self.config.target_coverage
        };
        let mut detected_count = 0usize;
        let mut stale = 0usize;
        let mut random_patterns = 0usize;
        let mut random_patterns_simulated = 0usize;
        let mut random_sim_passes = 0usize;
        let mut next_block = 0usize;
        // Dispatch groups ramp up 1 → 2 → 4 → … → threads: flows that meet
        // the target (or go stale) within the first block or two never pay
        // for a full thread-count group of speculative blocks, while
        // long-running phases quickly reach full-width dispatches. The
        // grouping only decides how much is speculated per dispatch — the
        // merge below is identical for any group size, so the output does
        // not depend on it.
        let mut group_ramp = 1usize;
        'random: while next_block < self.config.random_max_blocks {
            if target_met(detected_count) {
                break;
            }
            let group_len = group_ramp
                .min(driver.threads())
                .min(self.config.random_max_blocks - next_block);
            group_ramp = group_ramp.saturating_mul(2);
            // One job per outer block: the job generates the block's
            // patterns (the seed depends only on the block index) and
            // fault-simulates its ≤64-pattern chunks, so no serial work is
            // left on the merge thread beyond the merge itself.
            let group: Vec<SimulatedBlock> = driver.map(group_len, |job| {
                let block_index = next_block + job;
                let block = random_bool_patterns(
                    width,
                    self.config.random_block_size,
                    self.config.seed ^ (block_index as u64 + 1).wrapping_mul(0x9e37_79b9),
                );
                let masks = block
                    .chunks(64)
                    .map(|chunk| sim.detect_block_lanes(netlist, faults, chunk, &detected))
                    .collect();
                (block, masks)
            });

            // Sequential merge, in pattern order.
            for (block, block_masks) in &group {
                let mut kept_any = false;
                for (chunk, masks) in block.chunks(64).zip(block_masks) {
                    if target_met(detected_count) {
                        // The pattern-at-a-time loop stops before this
                        // chunk; its (speculative) pass is not counted.
                        break 'random;
                    }
                    random_sim_passes += 1;
                    random_patterns_simulated += chunk.len();
                    // Bucket each still-active fault under the first lane
                    // that detects it; faults already credited to an
                    // earlier chunk of this group drop out here.
                    let mut newly_by_lane: Vec<Vec<usize>> = vec![Vec::new(); chunk.len()];
                    for &(fault, lanes) in masks {
                        if !detected[fault] {
                            newly_by_lane[lanes.trailing_zeros() as usize].push(fault);
                        }
                    }
                    for (lane, newly) in newly_by_lane.iter().enumerate() {
                        if target_met(detected_count) {
                            // Mid-chunk cutoff: patterns past this lane are
                            // neither credited nor kept, exactly like the
                            // pattern-at-a-time loop that breaks here.
                            break 'random;
                        }
                        for &fault in newly {
                            detected[fault] = true;
                            detected_count += 1;
                        }
                        if !newly.is_empty() {
                            patterns.push(chunk[lane].clone());
                            random_patterns += 1;
                            kept_any = true;
                        }
                    }
                }
                if kept_any {
                    stale = 0;
                } else {
                    stale += 1;
                    if stale >= self.config.random_stale_blocks {
                        break 'random;
                    }
                }
            }
            next_block += group_len;
        }

        // Phase 2: PODEM on the remaining faults.
        let podem = Podem::new(netlist, self.config.backtrack_limit);
        let mut deterministic_patterns = 0usize;
        let mut untestable = 0usize;
        let mut aborted = 0usize;
        for (index, &fault) in faults.iter().enumerate() {
            if detected[index] || self.coverage(&detected) >= self.config.target_coverage {
                continue;
            }
            match podem.generate(netlist, fault) {
                PodemOutcome::Test(test) => {
                    let pattern: Vec<bool> = test
                        .iter()
                        .map(|v| match v {
                            Logic::One => true,
                            Logic::Zero => false,
                            // Fill don't-cares randomly, like ATOM's random
                            // fill; the choice only affects compaction.
                            Logic::X => rng.gen_bool(0.5),
                        })
                        .collect();
                    let newly = sim.detect_into(
                        netlist,
                        faults,
                        std::slice::from_ref(&pattern),
                        &mut detected,
                    );
                    if newly > 0 {
                        patterns.push(pattern);
                        deterministic_patterns += 1;
                    }
                }
                PodemOutcome::Untestable => untestable += 1,
                PodemOutcome::Aborted => aborted += 1,
            }
        }

        let detected_count = detected.iter().filter(|&&d| d).count();
        TestSet {
            patterns,
            fault_coverage: if faults.is_empty() {
                1.0
            } else {
                detected_count as f64 / faults.len() as f64
            },
            total_faults: faults.len(),
            detected_faults: detected_count,
            random_patterns,
            deterministic_patterns,
            untestable_faults: untestable,
            aborted_faults: aborted,
            random_patterns_simulated,
            random_sim_passes,
        }
    }

    fn coverage(&self, detected: &[bool]) -> f64 {
        if detected.is_empty() {
            return 1.0;
        }
        detected.iter().filter(|&&d| d).count() as f64 / detected.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanpower_netlist::bench;
    use scanpower_netlist::generator::CircuitFamily;

    #[test]
    fn s27_reaches_high_coverage() {
        let n = bench::parse(bench::S27_BENCH, "s27").unwrap();
        let test_set = AtpgFlow::new(AtpgConfig::default()).run(&n);
        assert!(test_set.fault_coverage > 0.9, "{}", test_set.fault_coverage);
        assert!(!test_set.patterns.is_empty());
        assert_eq!(
            test_set.detected_faults + test_set.untestable_faults + test_set.aborted_faults
                >= test_set.total_faults,
            test_set.detected_faults + test_set.untestable_faults + test_set.aborted_faults
                >= test_set.total_faults
        );
    }

    #[test]
    fn flow_is_deterministic() {
        let n = bench::parse(bench::S27_BENCH, "s27").unwrap();
        let a = AtpgFlow::new(AtpgConfig::default()).run(&n);
        let b = AtpgFlow::new(AtpgConfig::default()).run(&n);
        assert_eq!(a, b);
    }

    #[test]
    fn patterns_have_full_width_and_convert_to_scan_patterns() {
        let n = bench::parse(bench::S27_BENCH, "s27").unwrap();
        let test_set = AtpgFlow::new(AtpgConfig::fast()).run(&n);
        let width = n.combinational_inputs().len();
        assert!(test_set.patterns.iter().all(|p| p.len() == width));
        let scan = test_set.to_scan_patterns(&n);
        assert_eq!(scan.len(), test_set.patterns.len());
        assert!(scan
            .iter()
            .all(|p| p.pi.len() == n.primary_inputs().len() && p.scan.len() == n.dff_count()));
    }

    #[test]
    fn synthetic_circuit_gets_reasonable_coverage() {
        let circuit = CircuitFamily::iscas89_like("s344").unwrap().generate(1);
        let test_set = AtpgFlow::new(AtpgConfig::fast()).run(&circuit);
        // Synthetic random logic contains genuinely redundant faults, so the
        // raw coverage is lower than on the real benchmark; what matters is
        // that the flow accounts for every fault (detected, proved
        // untestable, or explicitly aborted) and produces a compact set.
        assert!(
            test_set.fault_coverage > 0.6,
            "coverage {}",
            test_set.fault_coverage
        );
        let efficiency = (test_set.detected_faults + test_set.untestable_faults) as f64
            / test_set.total_faults as f64;
        assert!(efficiency > 0.75, "fault efficiency {efficiency}");
        assert!(test_set.patterns.len() < 400);
    }

    #[test]
    fn random_phase_amortises_simulation_passes() {
        // The random phase must evaluate ≥10× more candidate patterns than
        // it spends fault-free simulation passes — the point of routing it
        // through the 64-wide packed kernel.
        let circuit = CircuitFamily::iscas89_like("s344").unwrap().generate(1);
        let test_set = AtpgFlow::new(AtpgConfig::default()).run(&circuit);
        assert!(test_set.random_patterns_simulated >= 64);
        assert!(
            test_set.random_patterns_simulated >= 10 * test_set.random_sim_passes,
            "{} patterns in {} passes",
            test_set.random_patterns_simulated,
            test_set.random_sim_passes
        );
    }

    /// The documented Phase-1 contract, executed literally: one pattern at
    /// a time, coverage checked before every pattern, fault dropping,
    /// block-level staleness. The flow must reproduce this exactly.
    fn pattern_at_a_time_random_phase(netlist: &Netlist, config: &AtpgConfig) -> Vec<Vec<bool>> {
        let faults = all_net_faults(netlist);
        let sim = FaultSim::new(netlist);
        let width = netlist.combinational_inputs().len();
        let mut detected = vec![false; faults.len()];
        let coverage = |detected: &[bool]| {
            if detected.is_empty() {
                1.0
            } else {
                detected.iter().filter(|&&d| d).count() as f64 / detected.len() as f64
            }
        };
        let mut kept = Vec::new();
        let mut stale = 0usize;
        'outer: for block_index in 0..config.random_max_blocks {
            if coverage(&detected) >= config.target_coverage {
                break;
            }
            let block = random_bool_patterns(
                width,
                config.random_block_size,
                config.seed ^ (block_index as u64 + 1).wrapping_mul(0x9e37_79b9),
            );
            let mut kept_any = false;
            for pattern in &block {
                if coverage(&detected) >= config.target_coverage {
                    break 'outer;
                }
                let newly = sim.detect_into(
                    netlist,
                    &faults,
                    std::slice::from_ref(pattern),
                    &mut detected,
                );
                if newly > 0 {
                    kept.push(pattern.clone());
                    kept_any = true;
                }
            }
            if kept_any {
                stale = 0;
            } else {
                stale += 1;
                if stale >= config.random_stale_blocks {
                    break;
                }
            }
        }
        kept
    }

    /// Regression for the mid-block coverage overshoot: with a target the
    /// random phase reaches inside a 64-lane chunk, the kept pattern count
    /// is pinned to the pattern-at-a-time loop's — crediting stops at the
    /// exact pattern where the target is crossed.
    #[test]
    fn random_phase_stops_at_target_coverage_mid_chunk() {
        let n = bench::parse(bench::S27_BENCH, "s27").unwrap();
        let config = AtpgConfig {
            target_coverage: 0.55,
            ..AtpgConfig::default()
        };
        let reference = pattern_at_a_time_random_phase(&n, &config);
        let test_set = AtpgFlow::new(config.clone()).run(&n);
        // The target is met mid-phase, so PODEM contributes nothing and the
        // test set is exactly the random-phase patterns.
        assert_eq!(test_set.deterministic_patterns, 0);
        assert_eq!(test_set.patterns, reference);
        assert_eq!(test_set.random_patterns, reference.len());
        // No overshoot: the target is reached, and dropping the last kept
        // pattern would fall below it again.
        let sim = FaultSim::new(&n);
        let faults = all_net_faults(&n);
        assert!(sim.coverage(&n, &faults, &test_set.patterns) >= config.target_coverage);
        assert!(
            sim.coverage(
                &n,
                &faults,
                &test_set.patterns[..test_set.patterns.len() - 1]
            ) < config.target_coverage
        );
    }

    /// Without a reachable target the (parallel) random phase must still
    /// match the pattern-at-a-time loop pattern for pattern.
    #[test]
    fn random_phase_matches_pattern_at_a_time_loop() {
        let n = bench::parse(bench::S27_BENCH, "s27").unwrap();
        for threads in [1, 2, 5] {
            let config = AtpgConfig {
                threads,
                ..AtpgConfig::default()
            };
            let reference = pattern_at_a_time_random_phase(&n, &config);
            let test_set = AtpgFlow::new(config).run(&n);
            assert_eq!(
                &test_set.patterns[..test_set.random_patterns],
                reference.as_slice(),
                "threads {threads}"
            );
        }
    }

    /// The whole flow — patterns, coverage, and every counter — is
    /// bit-identical across thread counts, including counts that do not
    /// divide the block count.
    #[test]
    fn flow_is_identical_across_thread_counts() {
        let circuit = CircuitFamily::iscas89_like("s344").unwrap().generate(1);
        for base in [AtpgConfig::fast(), AtpgConfig::default()] {
            let sequential = AtpgFlow::new(AtpgConfig {
                threads: 1,
                ..base.clone()
            })
            .run(&circuit);
            for threads in [0, 2, 3, 7] {
                let parallel = AtpgFlow::new(AtpgConfig {
                    threads,
                    ..base.clone()
                })
                .run(&circuit);
                assert_eq!(
                    parallel, sequential,
                    "threads {threads} diverged from sequential"
                );
            }
        }
    }

    #[test]
    fn coverage_verified_independently_by_fault_simulation() {
        let n = bench::parse(bench::S27_BENCH, "s27").unwrap();
        let test_set = AtpgFlow::new(AtpgConfig::default()).run(&n);
        let sim = FaultSim::new(&n);
        let faults = all_net_faults(&n);
        let coverage = sim.coverage(&n, &faults, &test_set.patterns);
        assert!((coverage - test_set.fault_coverage).abs() < 1e-9);
    }
}
