//! Stuck-at test pattern generation for the `scanpower` workspace.
//!
//! The paper drives its experiments with test sets produced by the ATOM
//! test generator \[18\]. ATOM is not available here, so this crate provides
//! a functionally equivalent substitute (see `DESIGN.md` §4): a classic
//! two-phase full-scan ATPG consisting of
//!
//! 1. a **random phase** — blocks of random patterns are fault-simulated
//!    with fault dropping and kept only when they detect new faults, and
//! 2. a **deterministic phase** — a PODEM implementation targets each
//!    remaining undetected fault directly.
//!
//! The output is a compact [`TestSet`] of fully-specified scan patterns plus
//! the achieved fault coverage. Only the statistical structure of the
//! vectors matters for the paper's shift-power experiments, which is exactly
//! what this flow reproduces.
//!
//! # Examples
//!
//! ```
//! use scanpower_netlist::bench;
//! use scanpower_atpg::{AtpgConfig, AtpgFlow};
//!
//! let circuit = bench::parse(bench::S27_BENCH, "s27")?;
//! let test_set = AtpgFlow::new(AtpgConfig::default()).run(&circuit);
//! assert!(test_set.fault_coverage > 0.9);
//! assert!(!test_set.patterns.is_empty());
//! # Ok::<(), scanpower_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flow;
mod podem;

pub use flow::{AtpgConfig, AtpgFlow, TestSet};
pub use podem::{Podem, PodemOutcome};
