//! The job server: bounded queue, supervised workers, streaming results.
//!
//! # Lifecycle of a job
//!
//! 1. **Submit** — the session decodes [`Request::SubmitJob`], resolves
//!    every [`CircuitSource`] to a validated [`Netlist`] (a bad snapshot
//!    or an ungeneratable spec rejects the whole submission with a typed
//!    [`Response::Error`] — nothing half-resolved is ever queued), then
//!    offers the job to the bounded queue. A full queue answers
//!    [`Response::Busy`]: backpressure is explicit and typed, the server
//!    never buffers unboundedly.
//! 2. **Run** — a worker pops the job and drives
//!    [`run_netlists_streamed`]: one circuit per supervised
//!    `BlockDriver` job, per-job deadlines, per-circuit degradation. The
//!    server's shared [`ResultCache`] is installed into the job's options
//!    first, so every circuit consults the cache (after the preflight
//!    gates) before any replay dispatches — resubmissions are served by
//!    hash lookup.
//! 3. **Stream** — each circuit's outcome is appended to the job's event
//!    queue as a [`Response::RowReady`] the moment it (and every earlier
//!    slot) completes, followed by one [`Response::JobDone`] (or
//!    [`Response::JobFailed`] after a catastrophic worker panic). Clients
//!    drain events with [`Request::PollJob`]; each event is delivered
//!    exactly once, in spec order.
//! 4. **Cancel** — [`Request::CancelJob`] trips the job's
//!    [`CancelFlag`] parent. Every in-flight circuit attempt polls a
//!    child of it at its replay-block checkpoints and winds down as a
//!    deterministic `Canceled` row within one block.
//!
//! Because every layer below is bit-deterministic, identical submissions
//! produce **byte-identical** `RowReady` payloads regardless of worker
//! count, arrival order, transport, or whether the rows came from the
//! cache or a fresh replay.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use scanpower_cache::ResultCache;
use scanpower_core::experiment::{run_netlists_streamed, ExperimentOptions, ResultCacheHandle};
use scanpower_netlist::Netlist;
use scanpower_sim::failpoint;
use scanpower_sim::CancelFlag;
use scanpower_wire::{decode_message, encode_message};

use crate::protocol::{CircuitSource, JobId, JobSpec, JobState, Request, Response, RowOutcome};
use crate::transport::{Connection, Transport};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Capacity of the bounded job queue. A submission that finds the
    /// queue full is refused with a typed [`Response::Busy`].
    pub queue_capacity: usize,
    /// Background worker threads pulling jobs off the queue. `0` starts
    /// none — the embedding test harness then steps jobs explicitly with
    /// [`Server::run_pending_job`], which is the deterministic way to
    /// exercise queue states.
    pub workers: usize,
    /// Per-job deadline (milliseconds) applied to submissions that did
    /// not set [`ExperimentOptions::job_deadline_ms`] themselves.
    pub default_deadline_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 4,
            workers: 1,
            default_deadline_ms: None,
        }
    }
}

/// One admitted job: its resolved inputs and its event stream.
struct JobEntry {
    id: JobId,
    netlists: Vec<Netlist>,
    options: ExperimentOptions,
    /// The cancellation parent a `CancelJob` request trips; every circuit
    /// attempt polls a child of it.
    cancel: CancelFlag,
    state: Mutex<JobState>,
    /// Undelivered events, in delivery order: `RowReady`s (spec order)
    /// then the final `JobDone`/`JobFailed`. Bounded by construction —
    /// one event per circuit plus the terminal one.
    events: Mutex<VecDeque<Response>>,
    completed: AtomicUsize,
}

struct ServerInner {
    config: ServeConfig,
    cache: Arc<ResultCache>,
    queue: Mutex<VecDeque<JobId>>,
    queue_signal: Condvar,
    jobs: Mutex<HashMap<JobId, Arc<JobEntry>>>,
    next_job: AtomicU64,
    shutdown: AtomicBool,
}

/// The job service. Cheap to share: sessions, listeners and workers all
/// operate on one reference-counted core.
pub struct Server {
    inner: Arc<ServerInner>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// A server with `config` and a fresh in-memory result cache.
    #[must_use]
    pub fn new(config: ServeConfig) -> Server {
        Server::with_cache(config, Arc::new(ResultCache::in_memory()))
    }

    /// A server sharing an existing result cache (e.g. one with a disk
    /// tier, or one shared across server generations).
    #[must_use]
    pub fn with_cache(config: ServeConfig, cache: Arc<ResultCache>) -> Server {
        let inner = Arc::new(ServerInner {
            config: config.clone(),
            cache,
            queue: Mutex::new(VecDeque::new()),
            queue_signal: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..config.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Server { inner, workers }
    }

    /// The server's shared result cache (hit/miss counters drive the
    /// cache-identity assertions of the test rig).
    #[must_use]
    pub fn cache(&self) -> &Arc<ResultCache> {
        &self.inner.cache
    }

    /// Runs one connection's session loop on the calling thread until the
    /// peer closes (or breaks framing). Every decoded request frame gets
    /// exactly one response frame; an undecodable payload gets a typed
    /// [`Response::Error`] and the session continues.
    pub fn handle_connection<C: Connection>(&self, mut conn: C) {
        session(&self.inner, &mut conn);
    }

    /// Spawns an accept loop over `transport`; each connection gets its
    /// own session thread. The loop ends when the transport shuts down
    /// (e.g. every [`LocalConnector`](crate::transport::LocalConnector)
    /// clone dropped, or [`TcpShutdown`](crate::transport::TcpShutdown)
    /// fired); join the returned handle to wait for that.
    pub fn spawn_listener<T: Transport>(&self, mut transport: T) -> JoinHandle<()>
    where
        T::Conn: Send,
    {
        let inner = Arc::clone(&self.inner);
        std::thread::spawn(move || {
            let mut sessions = Vec::new();
            while let Some(mut conn) = transport.accept() {
                let inner = Arc::clone(&inner);
                sessions.push(std::thread::spawn(move || session(&inner, &mut conn)));
            }
            for handle in sessions {
                let _ = handle.join();
            }
        })
    }

    /// Pops and runs one queued job on the calling thread; `false` when
    /// the queue was empty. The manual-stepping seam for `workers: 0`
    /// configurations — queue states (and cancellation of still-queued
    /// jobs) become fully deterministic.
    pub fn run_pending_job(&self) -> bool {
        let id = self.inner.queue.lock().expect("queue lock").pop_front();
        match id {
            Some(id) => {
                self.inner.run_job(id);
                true
            }
            None => false,
        }
    }

    /// Stops the background workers. Queued jobs stay queued; sessions
    /// keep answering polls and cancels until their connections close.
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.queue_signal.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &ServerInner) {
    loop {
        let id = {
            let mut queue = inner.queue.lock().expect("queue lock");
            loop {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(id) = queue.pop_front() {
                    break id;
                }
                queue = inner.queue_signal.wait(queue).expect("queue lock");
            }
        };
        inner.run_job(id);
    }
}

/// One connection's request/response loop. A session-level injected fault
/// (`serve::session`, keyed by the 1-based request ordinal) turns that
/// request into a typed error frame without touching the job tables.
fn session(inner: &ServerInner, conn: &mut dyn Connection) {
    let mut ordinal: u64 = 0;
    while let Ok(Some(frame)) = conn.recv_frame() {
        ordinal += 1;
        let response = match failpoint::hit("serve::session", ordinal) {
            Err(fault) => Response::Error {
                message: fault.to_string(),
            },
            Ok(()) => match decode_message::<Request>(&frame) {
                Err(error) => Response::Error {
                    message: format!("bad request frame: {error}"),
                },
                Ok(request) => inner.handle(request),
            },
        };
        if conn.send_frame(&encode_message(&response)).is_err() {
            break;
        }
    }
}

impl ServerInner {
    fn handle(&self, request: Request) -> Response {
        match request {
            Request::SubmitJob(spec) => self.submit(*spec),
            Request::PollJob(id) => self.poll(id),
            Request::CancelJob(id) => self.cancel(id),
        }
    }

    fn submit(&self, spec: JobSpec) -> Response {
        if spec.circuits.is_empty() {
            return Response::Error {
                message: "empty job: a submission needs at least one circuit".into(),
            };
        }
        let netlists = match resolve_circuits(&spec.circuits) {
            Ok(netlists) => netlists,
            Err(message) => return Response::Error { message },
        };
        let id = self.next_job.fetch_add(1, Ordering::Relaxed) + 1;
        if let Err(fault) = failpoint::hit("serve::queue", id) {
            return Response::Error {
                message: fault.to_string(),
            };
        }
        let mut options = spec.options;
        options.result_cache = ResultCacheHandle::new(Arc::clone(&self.cache));
        if options.job_deadline_ms.is_none() {
            options.job_deadline_ms = self.config.default_deadline_ms;
        }
        let entry = Arc::new(JobEntry {
            id,
            netlists,
            options,
            cancel: CancelFlag::new(),
            state: Mutex::new(JobState::Queued),
            events: Mutex::new(VecDeque::new()),
            completed: AtomicUsize::new(0),
        });
        // Admission and the capacity check happen under the queue lock so
        // two racing submissions cannot both squeeze past the bound.
        let mut queue = self.queue.lock().expect("queue lock");
        if queue.len() >= self.config.queue_capacity {
            return Response::Busy {
                queued: queue.len(),
                capacity: self.config.queue_capacity,
            };
        }
        self.jobs.lock().expect("jobs lock").insert(id, entry);
        queue.push_back(id);
        drop(queue);
        self.queue_signal.notify_one();
        Response::JobAccepted { job: id }
    }

    fn poll(&self, id: JobId) -> Response {
        let entry = self.jobs.lock().expect("jobs lock").get(&id).cloned();
        let Some(entry) = entry else {
            return Response::JobStatus {
                job: id,
                state: JobState::Unknown,
                completed: 0,
                total: 0,
            };
        };
        if let Some(event) = entry.events.lock().expect("events lock").pop_front() {
            return event;
        }
        let state = *entry.state.lock().expect("state lock");
        Response::JobStatus {
            job: id,
            state,
            completed: entry.completed.load(Ordering::Acquire),
            total: entry.netlists.len(),
        }
    }

    fn cancel(&self, id: JobId) -> Response {
        let entry = self.jobs.lock().expect("jobs lock").get(&id).cloned();
        match entry {
            None => Response::CancelAck {
                job: id,
                state: JobState::Unknown,
            },
            Some(entry) => {
                entry.cancel.cancel();
                Response::CancelAck {
                    job: id,
                    state: *entry.state.lock().expect("state lock"),
                }
            }
        }
    }

    fn run_job(&self, id: JobId) {
        let entry = self.jobs.lock().expect("jobs lock").get(&id).cloned();
        let Some(entry) = entry else { return };
        *entry.state.lock().expect("state lock") = JobState::Running;
        let hits_before = self.cache.stats().hits;
        let streamed = &entry;
        let run = catch_unwind(AssertUnwindSafe(|| {
            run_netlists_streamed(
                &entry.netlists,
                &entry.options,
                Some(&entry.cancel),
                &|index, outcome| {
                    let event = Response::RowReady {
                        job: streamed.id,
                        index,
                        outcome: match outcome {
                            Ok(row) => RowOutcome::Row(row.clone()),
                            Err(error) => RowOutcome::Failed {
                                message: error.to_string(),
                            },
                        },
                    };
                    streamed
                        .events
                        .lock()
                        .expect("events lock")
                        .push_back(event);
                    streamed.completed.fetch_add(1, Ordering::Release);
                },
            )
        }));
        match run {
            Ok(outcome) => {
                let failures = outcome.outcomes.iter().filter(|slot| slot.is_err()).count();
                let done = Response::JobDone {
                    job: entry.id,
                    rows: outcome.outcomes.len() - failures,
                    failures,
                    cache_hits: self.cache.stats().hits - hits_before,
                };
                *entry.state.lock().expect("state lock") = JobState::Done;
                entry.events.lock().expect("events lock").push_back(done);
            }
            Err(payload) => {
                let message = if let Some(text) = payload.downcast_ref::<&'static str>() {
                    (*text).to_owned()
                } else if let Some(text) = payload.downcast_ref::<String>() {
                    text.clone()
                } else {
                    "non-string panic payload".to_owned()
                };
                *entry.state.lock().expect("state lock") = JobState::Failed;
                entry
                    .events
                    .lock()
                    .expect("events lock")
                    .push_back(Response::JobFailed {
                        job: entry.id,
                        message,
                    });
            }
        }
    }
}

/// Resolves every submitted circuit to a validated [`Netlist`], or
/// explains (deterministically) why the submission is rejected. Spec
/// generation runs under `catch_unwind` so an adversarial spec cannot
/// take the session down.
fn resolve_circuits(sources: &[CircuitSource]) -> Result<Vec<Netlist>, String> {
    let mut netlists = Vec::with_capacity(sources.len());
    for (index, source) in sources.iter().enumerate() {
        let netlist = match source {
            CircuitSource::Family { spec, scale, seed } => {
                let (spec, seed) = (spec.clone(), *seed);
                let scale = *scale;
                catch_unwind(AssertUnwindSafe(move || {
                    let spec = match scale {
                        Some(factor) => spec.scaled(factor),
                        None => spec,
                    };
                    spec.generate(seed)
                }))
                .map_err(|_| format!("circuit {index}: spec generation failed"))?
            }
            CircuitSource::Snapshot { bytes } => decode_message::<Netlist>(bytes)
                .map_err(|error| format!("circuit {index}: bad netlist snapshot: {error}"))?,
        };
        netlist
            .validate()
            .map_err(|error| format!("circuit {index}: invalid netlist: {error}"))?;
        netlists.push(netlist);
    }
    Ok(netlists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanpower_netlist::generator::CircuitFamily;

    fn family(name: &str) -> CircuitSource {
        CircuitSource::Family {
            spec: CircuitFamily::iscas89_like(name).unwrap(),
            scale: Some(0.3),
            seed: 1,
        }
    }

    #[test]
    fn backpressure_is_a_typed_busy() {
        let server = Server::new(ServeConfig {
            queue_capacity: 1,
            workers: 0,
            default_deadline_ms: None,
        });
        let spec = JobSpec {
            circuits: vec![family("s27")],
            options: ExperimentOptions::fast(),
        };
        let first = server
            .inner
            .handle(Request::SubmitJob(Box::new(spec.clone())));
        assert!(matches!(first, Response::JobAccepted { job: 1 }));
        let second = server.inner.handle(Request::SubmitJob(Box::new(spec)));
        assert_eq!(
            second,
            Response::Busy {
                queued: 1,
                capacity: 1
            }
        );
    }

    #[test]
    fn manual_stepping_runs_queued_jobs_and_streams_rows() {
        let server = Server::new(ServeConfig {
            queue_capacity: 4,
            workers: 0,
            default_deadline_ms: None,
        });
        let spec = JobSpec {
            circuits: vec![family("s27"), family("s344")],
            options: ExperimentOptions::fast(),
        };
        let Response::JobAccepted { job } = server.inner.handle(Request::SubmitJob(Box::new(spec)))
        else {
            panic!("submission refused");
        };
        assert!(matches!(
            server.inner.handle(Request::PollJob(job)),
            Response::JobStatus {
                state: JobState::Queued,
                ..
            }
        ));
        assert!(server.run_pending_job());
        assert!(!server.run_pending_job(), "queue drained");
        for index in 0..2 {
            let event = server.inner.handle(Request::PollJob(job));
            assert!(
                matches!(
                    &event,
                    Response::RowReady {
                        index: i,
                        outcome: RowOutcome::Row(_),
                        ..
                    } if *i == index
                ),
                "event {index}: {event:?}"
            );
        }
        assert!(matches!(
            server.inner.handle(Request::PollJob(job)),
            Response::JobDone {
                rows: 2,
                failures: 0,
                ..
            }
        ));
        // Drained: further polls are status snapshots.
        assert!(matches!(
            server.inner.handle(Request::PollJob(job)),
            Response::JobStatus {
                state: JobState::Done,
                completed: 2,
                total: 2,
                ..
            }
        ));
    }

    #[test]
    fn bad_submissions_are_rejected_with_typed_errors() {
        let server = Server::new(ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        });
        let empty = JobSpec {
            circuits: vec![],
            options: ExperimentOptions::fast(),
        };
        assert!(matches!(
            server.inner.handle(Request::SubmitJob(Box::new(empty))),
            Response::Error { .. }
        ));
        let bad_snapshot = JobSpec {
            circuits: vec![CircuitSource::Snapshot {
                bytes: vec![0xde, 0xad],
            }],
            options: ExperimentOptions::fast(),
        };
        assert!(matches!(
            server
                .inner
                .handle(Request::SubmitJob(Box::new(bad_snapshot))),
            Response::Error { .. }
        ));
        assert!(!server.run_pending_job(), "nothing was queued");
    }

    #[test]
    fn snapshot_and_family_submissions_produce_identical_rows() {
        let spec = CircuitFamily::iscas89_like("s27").unwrap();
        let snapshot = spec.generate(1).to_wire_bytes();
        let server = Server::new(ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        });
        let submit = |source: CircuitSource| {
            let Response::JobAccepted { job } =
                server.inner.handle(Request::SubmitJob(Box::new(JobSpec {
                    circuits: vec![source],
                    options: ExperimentOptions::fast(),
                })))
            else {
                panic!("submission refused");
            };
            assert!(server.run_pending_job());
            server.inner.handle(Request::PollJob(job))
        };
        let from_family = submit(CircuitSource::Family {
            spec,
            scale: None,
            seed: 1,
        });
        let from_snapshot = submit(CircuitSource::Snapshot { bytes: snapshot });
        let row = |response: &Response| match response {
            Response::RowReady { outcome, .. } => outcome.clone(),
            other => panic!("expected RowReady, got {other:?}"),
        };
        assert_eq!(row(&from_family), row(&from_snapshot));
    }

    #[test]
    fn unknown_jobs_answer_unknown() {
        let server = Server::new(ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        });
        assert!(matches!(
            server.inner.handle(Request::PollJob(42)),
            Response::JobStatus {
                job: 42,
                state: JobState::Unknown,
                ..
            }
        ));
        assert!(matches!(
            server.inner.handle(Request::CancelJob(42)),
            Response::CancelAck {
                job: 42,
                state: JobState::Unknown,
            }
        ));
    }
}
