//! The SPWR job-service messages and their frozen wire encoding.
//!
//! Every request and response travels as a complete
//! [`encode_message`](scanpower_wire::encode_message) envelope (magic +
//! format version + canonical bytes) inside one
//! length-prefixed transport frame. Variant discriminants are **frozen**:
//! they are part of the protocol and must never be renumbered — new
//! variants append new tags. The pinning tests at the bottom of this
//! module fail on any accidental renumbering.
//!
//! | message | tag |
//! |---|---|
//! | [`Request::SubmitJob`] | 1 |
//! | [`Request::PollJob`] | 2 |
//! | [`Request::CancelJob`] | 3 |
//! | [`Response::JobAccepted`] | 1 |
//! | [`Response::Busy`] | 2 |
//! | [`Response::RowReady`] | 3 |
//! | [`Response::JobDone`] | 4 |
//! | [`Response::JobFailed`] | 5 |
//! | [`Response::JobStatus`] | 6 |
//! | [`Response::CancelAck`] | 7 |
//! | [`Response::Error`] | 8 |
//! | [`CircuitSource::Family`] | 1 |
//! | [`CircuitSource::Snapshot`] | 2 |
//! | [`RowOutcome::Row`] | 1 |
//! | [`RowOutcome::Failed`] | 2 |
//! | [`JobState`] | `Unknown`=0 `Queued`=1 `Running`=2 `Done`=3 `Failed`=4 |

use scanpower_core::experiment::{CircuitRow, ExperimentOptions};
use scanpower_netlist::generator::CircuitFamily;
use scanpower_wire::{Wire, WireError, WireReader, WireWriter};

/// Server-assigned job identifier, unique within one server's lifetime.
pub type JobId = u64;

/// One circuit of a job, in either of the two submission forms.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitSource {
    /// Tag 1: a generator spec — the server materialises
    /// `spec.scaled(scale).generate(seed)` exactly like the local harness,
    /// so a submitted spec and a local run produce the same netlist.
    Family {
        /// The published size statistics to generate from.
        spec: CircuitFamily,
        /// Optional size scaling applied before generation.
        scale: Option<f64>,
        /// Generation seed.
        seed: u64,
    },
    /// Tag 2: a complete canonical netlist snapshot — the bytes of an
    /// [`encode_message`](scanpower_wire::encode_message)`::<Netlist>`
    /// message. The server decodes and re-validates the netlist before
    /// accepting the job.
    Snapshot {
        /// The snapshot message bytes.
        bytes: Vec<u8>,
    },
}

impl Wire for CircuitSource {
    fn encode_into(&self, writer: &mut WireWriter) {
        match self {
            CircuitSource::Family { spec, scale, seed } => {
                writer.write_u8(1);
                spec.encode_into(writer);
                scale.encode_into(writer);
                seed.encode_into(writer);
            }
            CircuitSource::Snapshot { bytes } => {
                writer.write_u8(2);
                writer.write_bytes(bytes);
            }
        }
    }

    fn decode_from(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        match reader.read_u8()? {
            1 => Ok(CircuitSource::Family {
                spec: CircuitFamily::decode_from(reader)?,
                scale: Option::<f64>::decode_from(reader)?,
                seed: u64::decode_from(reader)?,
            }),
            2 => Ok(CircuitSource::Snapshot {
                bytes: reader.read_bytes()?.to_vec(),
            }),
            tag => Err(WireError::InvalidTag {
                type_name: "CircuitSource",
                tag,
            }),
        }
    }
}

/// A complete job submission: the circuits to run and the experiment
/// options. Only the *semantic* options matter for the result bytes — the
/// server overrides `result_cache` with its own shared cache, and
/// bit-identity knobs (`threads`, `lane_width`, …) are free to differ
/// between submissions without changing the returned rows.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The circuits, one result row each, delivered in this order.
    pub circuits: Vec<CircuitSource>,
    /// Harness options applied to every circuit of the job.
    pub options: ExperimentOptions,
}

impl Wire for JobSpec {
    fn encode_into(&self, writer: &mut WireWriter) {
        self.circuits.encode_into(writer);
        self.options.encode_into(writer);
    }

    fn decode_from(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(JobSpec {
            circuits: Vec::<CircuitSource>::decode_from(reader)?,
            options: ExperimentOptions::decode_from(reader)?,
        })
    }
}

/// Client-to-server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Tag 1: submit a job. Answered with [`Response::JobAccepted`],
    /// [`Response::Busy`] (queue full) or [`Response::Error`] (rejected).
    /// Boxed: a `JobSpec` dwarfs the other variants' job ids.
    SubmitJob(Box<JobSpec>),
    /// Tag 2: poll a job. Answered with the job's next pending event
    /// ([`Response::RowReady`], [`Response::JobDone`],
    /// [`Response::JobFailed`] — each delivered exactly once) or a
    /// [`Response::JobStatus`] snapshot when nothing new is pending.
    PollJob(JobId),
    /// Tag 3: cancel a job. Trips the job's cancellation parent — every
    /// in-flight circuit winds down at its next replay-block checkpoint —
    /// and is answered with [`Response::CancelAck`].
    CancelJob(JobId),
}

impl Wire for Request {
    fn encode_into(&self, writer: &mut WireWriter) {
        match self {
            Request::SubmitJob(spec) => {
                writer.write_u8(1);
                spec.encode_into(writer);
            }
            Request::PollJob(job) => {
                writer.write_u8(2);
                job.encode_into(writer);
            }
            Request::CancelJob(job) => {
                writer.write_u8(3);
                job.encode_into(writer);
            }
        }
    }

    fn decode_from(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        match reader.read_u8()? {
            1 => Ok(Request::SubmitJob(Box::new(JobSpec::decode_from(reader)?))),
            2 => Ok(Request::PollJob(JobId::decode_from(reader)?)),
            3 => Ok(Request::CancelJob(JobId::decode_from(reader)?)),
            tag => Err(WireError::InvalidTag {
                type_name: "Request",
                tag,
            }),
        }
    }
}

/// One circuit's final outcome inside a [`Response::RowReady`] frame.
#[derive(Debug, Clone, PartialEq)]
pub enum RowOutcome {
    /// Tag 1: the circuit's Table I row — bit-identical to a local run.
    Row(CircuitRow),
    /// Tag 2: the circuit failed; `message` is the deterministic
    /// `ExperimentError` display (which names the circuit).
    Failed {
        /// The error's display rendering.
        message: String,
    },
}

impl Wire for RowOutcome {
    fn encode_into(&self, writer: &mut WireWriter) {
        match self {
            RowOutcome::Row(row) => {
                writer.write_u8(1);
                row.encode_into(writer);
            }
            RowOutcome::Failed { message } => {
                writer.write_u8(2);
                message.encode_into(writer);
            }
        }
    }

    fn decode_from(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        match reader.read_u8()? {
            1 => Ok(RowOutcome::Row(CircuitRow::decode_from(reader)?)),
            2 => Ok(RowOutcome::Failed {
                message: String::decode_from(reader)?,
            }),
            tag => Err(WireError::InvalidTag {
                type_name: "RowOutcome",
                tag,
            }),
        }
    }
}

/// Lifecycle state of a job, reported by [`Response::JobStatus`] and
/// [`Response::CancelAck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Tag 0: the server knows no job under this id.
    Unknown,
    /// Tag 1: admitted, waiting in the bounded queue.
    Queued,
    /// Tag 2: a worker is running the circuit fan-out.
    Running,
    /// Tag 3: finished; every row event has been (or can be) polled.
    Done,
    /// Tag 4: the job's worker failed catastrophically (isolated panic
    /// outside the per-circuit supervision).
    Failed,
}

impl Wire for JobState {
    fn encode_into(&self, writer: &mut WireWriter) {
        writer.write_u8(match self {
            JobState::Unknown => 0,
            JobState::Queued => 1,
            JobState::Running => 2,
            JobState::Done => 3,
            JobState::Failed => 4,
        });
    }

    fn decode_from(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        match reader.read_u8()? {
            0 => Ok(JobState::Unknown),
            1 => Ok(JobState::Queued),
            2 => Ok(JobState::Running),
            3 => Ok(JobState::Done),
            4 => Ok(JobState::Failed),
            tag => Err(WireError::InvalidTag {
                type_name: "JobState",
                tag,
            }),
        }
    }
}

/// Server-to-client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Tag 1: the job was admitted under `job`.
    JobAccepted {
        /// The assigned job id.
        job: JobId,
    },
    /// Tag 2: backpressure — the bounded queue is full; resubmit later.
    Busy {
        /// Jobs currently queued.
        queued: usize,
        /// The queue's capacity.
        capacity: usize,
    },
    /// Tag 3: circuit `index` of `job` completed; delivered in spec order,
    /// exactly once per slot.
    RowReady {
        /// The job the row belongs to.
        job: JobId,
        /// The circuit's slot in the submitted order.
        index: usize,
        /// The circuit's row or its deterministic failure.
        outcome: RowOutcome,
    },
    /// Tag 4: every circuit of `job` finished (possibly with per-circuit
    /// failures); follows the last [`Response::RowReady`].
    JobDone {
        /// The finished job.
        job: JobId,
        /// Circuits that produced a row.
        rows: usize,
        /// Circuits that failed.
        failures: usize,
        /// Row-level result-cache hits this job was served by.
        cache_hits: u64,
    },
    /// Tag 5: the job's worker failed as a whole; no further events.
    JobFailed {
        /// The failed job.
        job: JobId,
        /// The failure's display rendering.
        message: String,
    },
    /// Tag 6: a poll found no pending event; a snapshot of the job.
    JobStatus {
        /// The polled job id (echoed even when unknown).
        job: JobId,
        /// Lifecycle state.
        state: JobState,
        /// Circuits completed so far.
        completed: usize,
        /// Circuits in the job.
        total: usize,
    },
    /// Tag 7: acknowledgement of [`Request::CancelJob`].
    CancelAck {
        /// The canceled job id (echoed even when unknown).
        job: JobId,
        /// The job's state when the cancel was applied.
        state: JobState,
    },
    /// Tag 8: the request could not be served — an undecodable frame, a
    /// rejected submission or an injected fault. The session stays usable.
    Error {
        /// Deterministic description of the refusal.
        message: String,
    },
}

impl Wire for Response {
    fn encode_into(&self, writer: &mut WireWriter) {
        match self {
            Response::JobAccepted { job } => {
                writer.write_u8(1);
                job.encode_into(writer);
            }
            Response::Busy { queued, capacity } => {
                writer.write_u8(2);
                queued.encode_into(writer);
                capacity.encode_into(writer);
            }
            Response::RowReady {
                job,
                index,
                outcome,
            } => {
                writer.write_u8(3);
                job.encode_into(writer);
                index.encode_into(writer);
                outcome.encode_into(writer);
            }
            Response::JobDone {
                job,
                rows,
                failures,
                cache_hits,
            } => {
                writer.write_u8(4);
                job.encode_into(writer);
                rows.encode_into(writer);
                failures.encode_into(writer);
                cache_hits.encode_into(writer);
            }
            Response::JobFailed { job, message } => {
                writer.write_u8(5);
                job.encode_into(writer);
                message.encode_into(writer);
            }
            Response::JobStatus {
                job,
                state,
                completed,
                total,
            } => {
                writer.write_u8(6);
                job.encode_into(writer);
                state.encode_into(writer);
                completed.encode_into(writer);
                total.encode_into(writer);
            }
            Response::CancelAck { job, state } => {
                writer.write_u8(7);
                job.encode_into(writer);
                state.encode_into(writer);
            }
            Response::Error { message } => {
                writer.write_u8(8);
                message.encode_into(writer);
            }
        }
    }

    fn decode_from(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        match reader.read_u8()? {
            1 => Ok(Response::JobAccepted {
                job: JobId::decode_from(reader)?,
            }),
            2 => Ok(Response::Busy {
                queued: usize::decode_from(reader)?,
                capacity: usize::decode_from(reader)?,
            }),
            3 => Ok(Response::RowReady {
                job: JobId::decode_from(reader)?,
                index: usize::decode_from(reader)?,
                outcome: RowOutcome::decode_from(reader)?,
            }),
            4 => Ok(Response::JobDone {
                job: JobId::decode_from(reader)?,
                rows: usize::decode_from(reader)?,
                failures: usize::decode_from(reader)?,
                cache_hits: u64::decode_from(reader)?,
            }),
            5 => Ok(Response::JobFailed {
                job: JobId::decode_from(reader)?,
                message: String::decode_from(reader)?,
            }),
            6 => Ok(Response::JobStatus {
                job: JobId::decode_from(reader)?,
                state: JobState::decode_from(reader)?,
                completed: usize::decode_from(reader)?,
                total: usize::decode_from(reader)?,
            }),
            7 => Ok(Response::CancelAck {
                job: JobId::decode_from(reader)?,
                state: JobState::decode_from(reader)?,
            }),
            8 => Ok(Response::Error {
                message: String::decode_from(reader)?,
            }),
            tag => Err(WireError::InvalidTag {
                type_name: "Response",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanpower_wire::{decode_message, encode_message, WIRE_MAGIC};

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = encode_message(&value);
        assert_eq!(decode_message::<T>(&bytes).unwrap(), value);
    }

    fn spec() -> JobSpec {
        JobSpec {
            circuits: vec![
                CircuitSource::Family {
                    spec: CircuitFamily::iscas89_like("s344").unwrap(),
                    scale: Some(0.3),
                    seed: 1,
                },
                CircuitSource::Snapshot {
                    bytes: vec![1, 2, 3],
                },
            ],
            options: ExperimentOptions::fast(),
        }
    }

    #[test]
    fn requests_round_trip() {
        round_trip(Request::SubmitJob(Box::new(spec())));
        round_trip(Request::PollJob(7));
        round_trip(Request::CancelJob(u64::MAX));
    }

    #[test]
    fn responses_round_trip() {
        round_trip(Response::JobAccepted { job: 1 });
        round_trip(Response::Busy {
            queued: 4,
            capacity: 4,
        });
        round_trip(Response::RowReady {
            job: 1,
            index: 2,
            outcome: RowOutcome::Failed {
                message: "`s344`: job canceled (cancellation flag tripped or deadline exceeded)"
                    .into(),
            },
        });
        round_trip(Response::JobDone {
            job: 1,
            rows: 3,
            failures: 1,
            cache_hits: 2,
        });
        round_trip(Response::JobFailed {
            job: 1,
            message: "worker panicked".into(),
        });
        round_trip(Response::JobStatus {
            job: 9,
            state: JobState::Running,
            completed: 1,
            total: 3,
        });
        round_trip(Response::CancelAck {
            job: 9,
            state: JobState::Queued,
        });
        round_trip(Response::Error {
            message: "bad request frame".into(),
        });
    }

    /// The first payload byte after the 6-byte envelope is the variant
    /// tag; these values are frozen protocol, not implementation detail.
    #[test]
    fn discriminants_are_frozen() {
        const TAG: usize = WIRE_MAGIC.len() + 2;
        let tag_of = |bytes: &[u8]| bytes[TAG];
        assert_eq!(
            tag_of(&encode_message(&Request::SubmitJob(Box::new(spec())))),
            1
        );
        assert_eq!(tag_of(&encode_message(&Request::PollJob(0))), 2);
        assert_eq!(tag_of(&encode_message(&Request::CancelJob(0))), 3);
        assert_eq!(
            tag_of(&encode_message(&Response::JobAccepted { job: 0 })),
            1
        );
        assert_eq!(
            tag_of(&encode_message(&Response::Busy {
                queued: 0,
                capacity: 0
            })),
            2
        );
        assert_eq!(
            tag_of(&encode_message(&Response::RowReady {
                job: 0,
                index: 0,
                outcome: RowOutcome::Failed { message: "".into() },
            })),
            3
        );
        assert_eq!(
            tag_of(&encode_message(&Response::JobDone {
                job: 0,
                rows: 0,
                failures: 0,
                cache_hits: 0,
            })),
            4
        );
        assert_eq!(
            tag_of(&encode_message(&Response::JobFailed {
                job: 0,
                message: "".into()
            })),
            5
        );
        assert_eq!(
            tag_of(&encode_message(&Response::JobStatus {
                job: 0,
                state: JobState::Unknown,
                completed: 0,
                total: 0,
            })),
            6
        );
        assert_eq!(
            tag_of(&encode_message(&Response::CancelAck {
                job: 0,
                state: JobState::Unknown,
            })),
            7
        );
        assert_eq!(
            tag_of(&encode_message(&Response::Error { message: "".into() })),
            8
        );
        // Nested enums, through their owning messages.
        let family = encode_message(&CircuitSource::Family {
            spec: CircuitFamily::iscas89_like("s27").unwrap(),
            scale: None,
            seed: 0,
        });
        assert_eq!(tag_of(&family), 1);
        let snapshot = encode_message(&CircuitSource::Snapshot { bytes: vec![] });
        assert_eq!(tag_of(&snapshot), 2);
        let failed = encode_message(&RowOutcome::Failed { message: "".into() });
        assert_eq!(tag_of(&failed), 2);
        for (state, tag) in [
            (JobState::Unknown, 0),
            (JobState::Queued, 1),
            (JobState::Running, 2),
            (JobState::Done, 3),
            (JobState::Failed, 4),
        ] {
            assert_eq!(tag_of(&encode_message(&state)), tag);
        }
    }

    #[test]
    fn unknown_tags_are_typed_errors() {
        let mut writer = WireWriter::new();
        writer.write_raw(&WIRE_MAGIC);
        writer.write_u16(scanpower_wire::WIRE_VERSION);
        writer.write_u8(99);
        let bytes = writer.into_bytes();
        assert!(matches!(
            decode_message::<Request>(&bytes),
            Err(WireError::InvalidTag {
                type_name: "Request",
                tag: 99
            })
        ));
        assert!(matches!(
            decode_message::<Response>(&bytes),
            Err(WireError::InvalidTag {
                type_name: "Response",
                tag: 99
            })
        ));
    }
}
