//! Job-service front-end for the scan-power experiment pipeline.
//!
//! The ROADMAP's first open item: wrap the one-circuit-per-job
//! [`run_table1`](scanpower_core::experiment::run_table1) fan-out behind
//! a binary protocol so the harness can serve traffic instead of running
//! batch-style. Three layers, smallest useful surface each:
//!
//! * [`protocol`] — the request/response messages on the canonical
//!   `SPWR` wire encoding, with **frozen** variant discriminants.
//! * [`transport`] — length-prefixed frames over a tiny [`Transport`] /
//!   [`Connection`] trait pair, with an in-process
//!   [`LocalTransport`] (deterministic, no sockets) and a
//!   [`TcpTransport`] (`std::net`) implementation.
//! * [`server`] / [`client`] — a bounded job queue with typed
//!   [`Busy`](protocol::Response::Busy) backpressure, supervised workers
//!   streaming per-circuit [`RowReady`](protocol::Response::RowReady)
//!   events in spec order, cache-before-replay row lookup, and
//!   cooperative [`CancelJob`](protocol::Request::CancelJob).
//!
//! The product guarantee: **identical submissions return bit-identical
//! rows** — regardless of worker count, arrival order, lane width, or
//! which transport carried them. `tests/serve.rs` pins it at the byte
//! level.
//!
//! # Example
//!
//! ```
//! use scanpower_core::experiment::ExperimentOptions;
//! use scanpower_netlist::generator::CircuitFamily;
//! use scanpower_serve::protocol::{CircuitSource, JobSpec, Response};
//! use scanpower_serve::transport::LocalTransport;
//! use scanpower_serve::{ServeClient, ServeConfig, Server};
//!
//! let server = Server::new(ServeConfig::default());
//! let (transport, connector) = LocalTransport::new();
//! let listener = server.spawn_listener(transport);
//!
//! let mut client = ServeClient::new(connector.connect()?);
//! let drained = client
//!     .run_job(&JobSpec {
//!         circuits: vec![CircuitSource::Family {
//!             spec: CircuitFamily::iscas89_like("s27")?,
//!             scale: None,
//!             seed: 1,
//!         }],
//!         options: ExperimentOptions::fast(),
//!     })
//!     .unwrap();
//! assert_eq!(drained.rows.len(), 1);
//! assert!(matches!(drained.end, Response::JobDone { rows: 1, .. }));
//!
//! drop(client);
//! drop(connector); // closes the local listener
//! listener.join().unwrap();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod transport;

pub use client::{ClientError, DrainedJob, RowEvent, ServeClient};
pub use protocol::{JobId, JobSpec, Request, Response};
pub use server::{ServeConfig, Server};
pub use transport::{
    Connection, LocalConnector, LocalTransport, StreamConnection, TcpShutdown, TcpTransport,
    Transport,
};
