//! A small synchronous client over any [`Connection`].
//!
//! Every call is one request frame and one response frame; the raw
//! response payload bytes are kept available ([`RowEvent::frame`])
//! because the determinism guarantee is pinned at the **byte** level —
//! the test rig compares `RowReady` payloads across worker counts,
//! arrival orders and transports without decoding first.

use std::fmt;
use std::io;
use std::time::Duration;

use scanpower_wire::{decode_message, encode_message, WireError};

use crate::protocol::{JobId, JobSpec, Request, Response};
use crate::transport::Connection;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (or the peer closed mid-exchange).
    Io(io::Error),
    /// The peer's response frame did not decode.
    Wire(WireError),
    /// The peer closed cleanly where a response was expected.
    Closed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(error) => write!(f, "transport error: {error}"),
            ClientError::Wire(error) => write!(f, "bad response frame: {error}"),
            ClientError::Closed => f.write_str("connection closed before the response"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(error: io::Error) -> ClientError {
        ClientError::Io(error)
    }
}

impl From<WireError> for ClientError {
    fn from(error: WireError) -> ClientError {
        ClientError::Wire(error)
    }
}

/// One decoded `RowReady` event plus its exact payload bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct RowEvent {
    /// The circuit's slot in the submitted order.
    pub index: usize,
    /// The decoded event (always [`Response::RowReady`]).
    pub response: Response,
    /// The response frame's payload, byte-exact as received.
    pub frame: Vec<u8>,
}

/// A drained job: every row event (in spec order) and the terminal frame.
#[derive(Debug, Clone, PartialEq)]
pub struct DrainedJob {
    /// The job id.
    pub job: JobId,
    /// The `RowReady` events, one per circuit, in spec order.
    pub rows: Vec<RowEvent>,
    /// The terminal [`Response::JobDone`] or [`Response::JobFailed`].
    pub end: Response,
}

/// The client: owns one connection, issues one request at a time.
pub struct ServeClient<C: Connection> {
    conn: C,
    /// Pause between polls that found no pending event (only used by
    /// [`ServeClient::drain_job`]); zero spins.
    poll_interval: Duration,
}

impl<C: Connection> ServeClient<C> {
    /// Wraps a connection with a 1 ms poll interval.
    pub fn new(conn: C) -> ServeClient<C> {
        ServeClient {
            conn,
            poll_interval: Duration::from_millis(1),
        }
    }

    /// Sends one request, returns the raw response payload bytes.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure, [`ClientError::Closed`]
    /// when the peer hung up instead of answering.
    pub fn request_raw(&mut self, request: &Request) -> Result<Vec<u8>, ClientError> {
        self.conn.send_frame(&encode_message(request))?;
        self.conn.recv_frame()?.ok_or(ClientError::Closed)
    }

    /// Sends one request, returns the decoded response.
    ///
    /// # Errors
    ///
    /// Everything [`ServeClient::request_raw`] returns, plus
    /// [`ClientError::Wire`] for an undecodable response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        Ok(decode_message(&self.request_raw(request)?)?)
    }

    /// Submits a job; the response is [`Response::JobAccepted`],
    /// [`Response::Busy`] or [`Response::Error`].
    ///
    /// # Errors
    ///
    /// Everything [`ServeClient::request`] returns.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<Response, ClientError> {
        self.request(&Request::SubmitJob(Box::new(spec.clone())))
    }

    /// Cancels a job.
    ///
    /// # Errors
    ///
    /// Everything [`ServeClient::request`] returns.
    pub fn cancel(&mut self, job: JobId) -> Result<Response, ClientError> {
        self.request(&Request::CancelJob(job))
    }

    /// Polls `job` until the terminal event, collecting every `RowReady`
    /// (with its exact payload bytes) along the way. Rows arrive in spec
    /// order; polls that find nothing pending sleep `poll_interval`.
    ///
    /// # Errors
    ///
    /// Everything [`ServeClient::request`] returns; an unexpected
    /// response kind is surfaced as [`ClientError::Wire`].
    pub fn drain_job(&mut self, job: JobId) -> Result<DrainedJob, ClientError> {
        let mut rows = Vec::new();
        loop {
            let frame = self.request_raw(&Request::PollJob(job))?;
            let response: Response = decode_message(&frame)?;
            match response {
                Response::RowReady { index, .. } => rows.push(RowEvent {
                    index,
                    response,
                    frame,
                }),
                Response::JobDone { .. } | Response::JobFailed { .. } => {
                    return Ok(DrainedJob {
                        job,
                        rows,
                        end: response,
                    });
                }
                Response::JobStatus { .. } => {
                    if !self.poll_interval.is_zero() {
                        std::thread::sleep(self.poll_interval);
                    }
                }
                other => {
                    return Err(ClientError::Wire(WireError::Invalid(format!(
                        "unexpected response while draining job {job}: {other:?}"
                    ))));
                }
            }
        }
    }

    /// Submit + drain in one call: the whole job, rows in spec order.
    ///
    /// # Errors
    ///
    /// Everything [`ServeClient::submit`] and [`ServeClient::drain_job`]
    /// return; a refused submission ([`Response::Busy`] /
    /// [`Response::Error`]) is surfaced as [`ClientError::Wire`] carrying
    /// the refusal.
    pub fn run_job(&mut self, spec: &JobSpec) -> Result<DrainedJob, ClientError> {
        match self.submit(spec)? {
            Response::JobAccepted { job } => self.drain_job(job),
            refused => Err(ClientError::Wire(WireError::Invalid(format!(
                "submission refused: {refused:?}"
            )))),
        }
    }
}
