//! Framed transports for the job service.
//!
//! A connection carries **frames**: a little-endian `u32` length prefix
//! followed by that many payload bytes (a complete
//! [`encode_message`](scanpower_wire::encode_message) envelope). Framing
//! is transport-level; everything inside a frame is the canonical wire
//! encoding, so the same payload bytes travel over every transport.
//!
//! Two transports ship, in the shape of `naia`'s client/server split:
//!
//! * [`LocalTransport`] — paired in-process byte channels. Fully
//!   deterministic, no sockets, no ports; the test rig and any embedded
//!   use drive this one.
//! * [`TcpTransport`] — a [`std::net::TcpListener`] front. Same frames,
//!   same payload bytes, real sockets.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// Ceiling on one frame's payload length. A length prefix over this is
/// treated as a framing error and ends the connection — a corrupted or
/// hostile prefix must not trigger a giant allocation.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// One framed, bidirectional connection.
pub trait Connection: Send {
    /// Sends one frame (length prefix + payload) and flushes it.
    ///
    /// # Errors
    ///
    /// Propagates the underlying stream's I/O errors; refuses payloads
    /// over [`MAX_FRAME_LEN`].
    fn send_frame(&mut self, frame: &[u8]) -> io::Result<()>;

    /// Receives the next frame's payload; `Ok(None)` on a clean
    /// end-of-stream (the peer closed between frames).
    ///
    /// # Errors
    ///
    /// An end-of-stream *inside* a frame is
    /// [`io::ErrorKind::UnexpectedEof`]; a length prefix over
    /// [`MAX_FRAME_LEN`] is [`io::ErrorKind::InvalidData`].
    fn recv_frame(&mut self) -> io::Result<Option<Vec<u8>>>;
}

/// The frame codec over any byte stream ([`TcpStream`],
/// [`ChannelDuplex`], …).
#[derive(Debug)]
pub struct StreamConnection<S> {
    stream: S,
}

impl<S: Read + Write + Send> StreamConnection<S> {
    /// Wraps a byte stream in the frame codec.
    pub fn new(stream: S) -> StreamConnection<S> {
        StreamConnection { stream }
    }
}

impl<S: Read + Write + Send> Connection for StreamConnection<S> {
    fn send_frame(&mut self, frame: &[u8]) -> io::Result<()> {
        if frame.len() > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {} bytes exceeds MAX_FRAME_LEN", frame.len()),
            ));
        }
        let prefix = u32::try_from(frame.len())
            .expect("MAX_FRAME_LEN fits in u32")
            .to_le_bytes();
        self.stream.write_all(&prefix)?;
        self.stream.write_all(frame)?;
        self.stream.flush()
    }

    fn recv_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        let mut prefix = [0u8; 4];
        // A clean close lands exactly between frames: zero bytes of the
        // next prefix. Anything shorter than a full frame after that is a
        // mid-frame truncation and surfaces as UnexpectedEof.
        if self.stream.read(&mut prefix[..1])? == 0 {
            return Ok(None);
        }
        self.stream.read_exact(&mut prefix[1..])?;
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length prefix {len} exceeds MAX_FRAME_LEN"),
            ));
        }
        let mut frame = vec![0u8; len];
        self.stream.read_exact(&mut frame)?;
        Ok(Some(frame))
    }
}

/// One end of an in-process byte pipe: [`Write`] hands chunks to the
/// peer's channel, [`Read`] drains chunks byte-exactly (a reader may
/// consume half a chunk and get the rest on the next call). Dropping an
/// end closes the pipe — the peer reads end-of-stream, exactly like a
/// closed socket.
#[derive(Debug)]
pub struct ChannelDuplex {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    buffer: VecDeque<u8>,
}

impl ChannelDuplex {
    /// A connected pair of pipe ends.
    #[must_use]
    pub fn pair() -> (ChannelDuplex, ChannelDuplex) {
        let (a_tx, b_rx) = channel();
        let (b_tx, a_rx) = channel();
        (
            ChannelDuplex {
                tx: a_tx,
                rx: a_rx,
                buffer: VecDeque::new(),
            },
            ChannelDuplex {
                tx: b_tx,
                rx: b_rx,
                buffer: VecDeque::new(),
            },
        )
    }
}

impl Write for ChannelDuplex {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx
            .send(buf.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"))?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Read for ChannelDuplex {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        while self.buffer.is_empty() {
            match self.rx.recv() {
                Ok(chunk) => self.buffer.extend(chunk),
                // All peer senders gone: end-of-stream.
                Err(_) => return Ok(0),
            }
        }
        let mut copied = 0;
        while copied < out.len() {
            match self.buffer.pop_front() {
                Some(byte) => {
                    out[copied] = byte;
                    copied += 1;
                }
                None => break,
            }
        }
        Ok(copied)
    }
}

/// A listener: blocks for inbound connections until the transport closes.
pub trait Transport: Send + 'static {
    /// The connection type this transport accepts.
    type Conn: Connection + 'static;

    /// Blocks for the next inbound connection; `None` once the transport
    /// has shut down (no more connections will ever arrive).
    fn accept(&mut self) -> Option<Self::Conn>;
}

/// The in-process transport: connections are [`ChannelDuplex`] pairs
/// handed over an internal channel. The listener shuts down when every
/// [`LocalConnector`] clone has been dropped.
#[derive(Debug)]
pub struct LocalTransport {
    incoming: Receiver<ChannelDuplex>,
}

/// The client side of a [`LocalTransport`]: clonable, sendable connection
/// factory.
#[derive(Debug, Clone)]
pub struct LocalConnector {
    listener: Sender<ChannelDuplex>,
}

impl LocalTransport {
    /// A fresh in-process listener plus its connection factory.
    #[must_use]
    pub fn new() -> (LocalTransport, LocalConnector) {
        let (listener, incoming) = channel();
        (LocalTransport { incoming }, LocalConnector { listener })
    }
}

impl Transport for LocalTransport {
    type Conn = StreamConnection<ChannelDuplex>;

    fn accept(&mut self) -> Option<Self::Conn> {
        self.incoming.recv().ok().map(StreamConnection::new)
    }
}

impl LocalConnector {
    /// Opens a connection to the paired [`LocalTransport`].
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::ConnectionRefused`] when the listener is gone.
    pub fn connect(&self) -> io::Result<StreamConnection<ChannelDuplex>> {
        let (client, server) = ChannelDuplex::pair();
        self.listener.send(server).map_err(|_| {
            io::Error::new(io::ErrorKind::ConnectionRefused, "local listener closed")
        })?;
        Ok(StreamConnection::new(client))
    }

    /// Hands a raw pipe end to the listener and returns the client end —
    /// for tests that need byte-level (unframed) access to the wire.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::ConnectionRefused`] when the listener is gone.
    pub fn connect_raw(&self) -> io::Result<ChannelDuplex> {
        let (client, server) = ChannelDuplex::pair();
        self.listener.send(server).map_err(|_| {
            io::Error::new(io::ErrorKind::ConnectionRefused, "local listener closed")
        })?;
        Ok(client)
    }
}

/// The socket transport: a [`TcpListener`] front over the same frames.
#[derive(Debug)]
pub struct TcpTransport {
    listener: TcpListener,
    stop: Arc<AtomicBool>,
}

/// Handle that unblocks and stops a [`TcpTransport`]'s accept loop.
#[derive(Debug, Clone)]
pub struct TcpShutdown {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl TcpTransport {
    /// Binds a listener (use port 0 for an ephemeral port) and returns it
    /// with its shutdown handle.
    ///
    /// # Errors
    ///
    /// The bind's I/O errors.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<(TcpTransport, TcpShutdown)> {
        let listener = TcpListener::bind(addr)?;
        let stop = Arc::new(AtomicBool::new(false));
        let shutdown = TcpShutdown {
            addr: listener.local_addr()?,
            stop: Arc::clone(&stop),
        };
        Ok((TcpTransport { listener, stop }, shutdown))
    }

    /// The bound address (the concrete port when bound to port 0).
    ///
    /// # Errors
    ///
    /// The underlying socket's I/O errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }
}

impl Transport for TcpTransport {
    type Conn = StreamConnection<TcpStream>;

    fn accept(&mut self) -> Option<Self::Conn> {
        if self.stop.load(Ordering::Acquire) {
            return None;
        }
        let (stream, _) = self.listener.accept().ok()?;
        // The wake-up connection from TcpShutdown is not a client;
        // re-check the flag before handing it out.
        if self.stop.load(Ordering::Acquire) {
            return None;
        }
        Some(StreamConnection::new(stream))
    }
}

impl TcpShutdown {
    /// Stops the accept loop: sets the flag, then opens (and immediately
    /// drops) a wake-up connection so a blocked `accept` observes it.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
    }

    /// The listener's address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_the_local_pipe() {
        let (a, b) = ChannelDuplex::pair();
        let mut a = StreamConnection::new(a);
        let mut b = StreamConnection::new(b);
        a.send_frame(b"hello").unwrap();
        a.send_frame(b"").unwrap();
        a.send_frame(&[7u8; 1000]).unwrap();
        assert_eq!(b.recv_frame().unwrap().unwrap(), b"hello");
        assert_eq!(b.recv_frame().unwrap().unwrap(), b"");
        assert_eq!(b.recv_frame().unwrap().unwrap(), vec![7u8; 1000]);
        drop(a);
        assert!(b.recv_frame().unwrap().is_none(), "clean end-of-stream");
    }

    #[test]
    fn truncated_frame_is_an_unexpected_eof() {
        let (mut a, b) = ChannelDuplex::pair();
        let mut b = StreamConnection::new(b);
        // A 100-byte frame announced, 3 bytes delivered, then the close.
        a.write_all(&100u32.to_le_bytes()).unwrap();
        a.write_all(&[1, 2, 3]).unwrap();
        drop(a);
        let error = b.recv_frame().unwrap_err();
        assert_eq!(error.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_is_refused_without_allocating() {
        let (mut a, b) = ChannelDuplex::pair();
        let mut b = StreamConnection::new(b);
        a.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let error = b.recv_frame().unwrap_err();
        assert_eq!(error.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn local_transport_hands_out_connected_pairs() {
        let (mut transport, connector) = LocalTransport::new();
        let mut client = connector.connect().unwrap();
        let mut server_side = transport.accept().unwrap();
        client.send_frame(b"ping").unwrap();
        assert_eq!(server_side.recv_frame().unwrap().unwrap(), b"ping");
        server_side.send_frame(b"pong").unwrap();
        assert_eq!(client.recv_frame().unwrap().unwrap(), b"pong");
        drop(connector);
        drop(client);
        drop(server_side);
        assert!(transport.accept().is_none(), "all connectors dropped");
    }

    #[test]
    fn tcp_transport_accepts_and_shuts_down() {
        let (mut transport, shutdown) = TcpTransport::bind("127.0.0.1:0").unwrap();
        let addr = transport.local_addr().unwrap();
        let accepted = std::thread::spawn(move || {
            let mut conn = transport.accept().expect("real connection");
            let frame = conn.recv_frame().unwrap().unwrap();
            conn.send_frame(&frame).unwrap();
            transport.accept().is_none()
        });
        let mut client = StreamConnection::new(TcpStream::connect(addr).unwrap());
        client.send_frame(b"over tcp").unwrap();
        // The echo proves the first accept completed before the shutdown
        // races the loop.
        assert_eq!(client.recv_frame().unwrap().unwrap(), b"over tcp");
        shutdown.shutdown();
        assert!(
            accepted.join().unwrap(),
            "shutdown unblocks and ends the accept loop"
        );
    }
}
