//! Cost model of the content-addressed result cache on the Table I flow:
//! what a cold miss adds over the uncached run (hashing + encoding +
//! insertion), what a warm in-memory hit saves (the whole replay), and
//! where the disk tier lands in between (read + decode + promotion).
//! Snapshot: `BENCH_cache.json`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use scanpower_bench::{bench_options, BENCH_SCALE};
use scanpower_cache::ResultCache;
use scanpower_core::experiment::{run_table1, ExperimentOptions, ResultCacheHandle};
use scanpower_netlist::generator::CircuitFamily;

fn cache_specs() -> Vec<CircuitFamily> {
    ["s344", "s641"]
        .iter()
        .map(|name| CircuitFamily::iscas89_like(name).expect("known circuit"))
        .collect()
}

fn with_cache(cache: &Arc<ResultCache>) -> ExperimentOptions {
    let mut options = bench_options();
    options.result_cache = ResultCacheHandle::new(Arc::clone(cache));
    options
}

fn result_cache(c: &mut Criterion) {
    let specs = cache_specs();
    let scale = Some(BENCH_SCALE);

    let mut group = c.benchmark_group("result_cache");
    group.sample_size(10);

    // Baseline: the flow with the cache left off entirely.
    let uncached = bench_options();
    group.bench_function("table1_2_circuits_uncached", |b| {
        b.iter(|| run_table1(&specs, &uncached, scale, 1));
    });

    // Cold miss: a fresh cache every iteration, so each run pays the full
    // flow plus key hashing, wire encoding and insertion.
    group.bench_function("table1_2_circuits_cold_miss", |b| {
        b.iter(|| {
            let cache = Arc::new(ResultCache::in_memory());
            run_table1(&specs, &with_cache(&cache), scale, 1)
        });
    });

    // Warm hit: the cache is filled once outside the timing loop; every
    // iteration is served row-by-row from memory, skipping the replay.
    let warm = Arc::new(ResultCache::in_memory());
    let warm_options = with_cache(&warm);
    let filled = run_table1(&specs, &warm_options, scale, 1);
    group.bench_function("table1_2_circuits_warm_hit", |b| {
        b.iter(|| {
            let served = run_table1(&specs, &warm_options, scale, 1);
            assert_eq!(served, filled);
            served
        });
    });

    // Disk-tier hit: the directory is filled once; every iteration opens a
    // *fresh* cache instance over it (a new process, in effect), so each
    // row is a disk read + decode + promotion into the empty memory tier.
    let dir = std::env::temp_dir().join(format!("scanpower-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fill = Arc::new(ResultCache::with_disk(&dir));
    let _ = run_table1(&specs, &with_cache(&fill), scale, 1);
    drop(fill);
    group.bench_function("table1_2_circuits_disk_hit", |b| {
        b.iter(|| {
            let cache = Arc::new(ResultCache::with_disk(&dir));
            let served = run_table1(&specs, &with_cache(&cache), scale, 1);
            assert_eq!(served, filled);
            served
        });
    });
    let _ = std::fs::remove_dir_all(&dir);

    group.finish();
}

criterion_group!(benches, result_cache);
criterion_main!(benches);
