//! Table I reproduction bench: prints the per-circuit dynamic/static rows
//! for the three scan structures and measures the runtime of the complete
//! per-circuit flow (ATPG + planning + pattern search + power evaluation).

use criterion::{criterion_group, criterion_main, Criterion};

use scanpower_bench::{bench_circuit, bench_options, run_comparison, BENCH_CIRCUITS};
use scanpower_core::experiment::Table1Report;

fn table1(c: &mut Criterion) {
    let options = bench_options();

    // Print the reproduced rows once, so `cargo bench` output contains the
    // same series the paper reports (on the scaled bench circuits).
    let rows: Vec<_> = BENCH_CIRCUITS
        .iter()
        .map(|name| run_comparison(&bench_circuit(name), &options))
        .collect();
    let report = Table1Report { rows };
    println!(
        "\nTable I (scaled bench circuits)\n{}",
        report.to_table_string()
    );
    println!(
        "average improvement vs traditional: dynamic {:.1}%, static {:.1}%\n",
        report.average_dynamic_improvement(),
        report.average_static_improvement()
    );

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for name in BENCH_CIRCUITS {
        let circuit = bench_circuit(name);
        group.bench_function(*name, |b| {
            b.iter(|| run_comparison(&circuit, &options));
        });
    }
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
