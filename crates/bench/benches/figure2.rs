//! Figure 2 reproduction bench: prints the 45 nm NAND2 leakage table and
//! measures the cost of the leakage queries the algorithms perform millions
//! of times (per-gate table lookup and whole-circuit leakage estimation).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use scanpower_bench::bench_circuit;
use scanpower_netlist::GateKind;
use scanpower_power::{LeakageEstimator, LeakageLibrary};
use scanpower_sim::{Evaluator, Logic};

fn figure2(c: &mut Criterion) {
    let library = LeakageLibrary::cmos45();

    println!("\nFigure 2 — NAND2 leakage (nA) at 45 nm / 0.9 V");
    println!("  A B | leakage");
    for state in 0..4u32 {
        println!(
            "  {} {} | {:6.1}",
            state & 1,
            (state >> 1) & 1,
            library.gate_leakage(GateKind::Nand, 2, state)
        );
    }
    println!();

    c.bench_function("figure2/nand2_table", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for state in 0..4u32 {
                total += library.gate_leakage(black_box(GateKind::Nand), 2, state);
            }
            total
        });
    });

    let circuit = bench_circuit("s641");
    let estimator = LeakageEstimator::new(&circuit, &library);
    let evaluator = Evaluator::new(&circuit);
    let values = evaluator.evaluate(&circuit, &vec![Logic::Zero; evaluator.inputs().len()]);
    c.bench_function("figure2/circuit_leakage_s641", |b| {
        b.iter(|| estimator.circuit_leakage(black_box(&circuit), black_box(&values)));
    });
}

criterion_group!(benches, figure2);
criterion_main!(benches);
