//! Block-parallel driver bench: the same 64-wide workloads (IVC
//! Monte-Carlo leakage search, sampled observability forward pass) on the
//! sequential fallback vs the automatic thread count. The outputs are
//! bit-identical by construction — this bench measures only the sharding
//! speed-up, and asserts the agreement once before timing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use scanpower_bench::bench_circuit;
use scanpower_power::{InputVectorControl, LeakageEstimator, LeakageLibrary, LeakageObservability};
use scanpower_sim::{BlockDriver, Canceled, JobPolicy, Logic};

fn parallel_blocks(c: &mut Criterion) {
    let circuit = bench_circuit("s1238");
    let library = LeakageLibrary::cmos45();
    let estimator = LeakageEstimator::new(&circuit, &library);
    let width = circuit.combinational_inputs().len();
    let template = vec![Logic::X; width];

    let sequential = InputVectorControl::with_budget(512, 11).with_threads(1);
    let automatic = InputVectorControl::with_budget(512, 11).with_threads(0);
    assert_eq!(
        sequential.search(&circuit, &estimator, &template),
        automatic.search(&circuit, &estimator, &template),
        "thread count must never change the search result"
    );
    println!(
        "\nparallel_blocks — auto driver uses {} worker thread(s)",
        BlockDriver::auto().threads()
    );

    c.bench_function("parallel/ivc_512_sequential", |b| {
        b.iter(|| sequential.search(black_box(&circuit), &estimator, &template));
    });
    c.bench_function("parallel/ivc_512_auto_threads", |b| {
        b.iter(|| automatic.search(black_box(&circuit), &estimator, &template));
    });

    // Supervision overhead: the same trivial 64-job map on the plain
    // driver vs map_supervised (catch_unwind + a fresh JobContext and
    // CancelFlag per job). The absolute gap is the per-job price of the
    // fault isolation run_table1_partial buys.
    let driver = BlockDriver::sequential();
    assert_eq!(
        driver
            .map_supervised(64, JobPolicy::default(), |context| {
                Ok::<usize, Canceled>(context.job() * 3)
            })
            .into_iter()
            .collect::<Result<Vec<_>, _>>()
            .expect("no job fails"),
        driver.map(64, |job| job * 3),
        "supervision must not change a clean map's results"
    );
    c.bench_function("parallel/map_64_jobs_plain", |b| {
        b.iter(|| driver.map(black_box(64), |job| job * 3));
    });
    c.bench_function("parallel/map_64_jobs_supervised", |b| {
        b.iter(|| {
            driver.map_supervised(black_box(64), JobPolicy::default(), |context| {
                Ok::<usize, Canceled>(context.job() * 3)
            })
        });
    });

    c.bench_function("parallel/observability_16_blocks_sequential", |b| {
        b.iter(|| {
            LeakageObservability::compute_sampled_with(
                black_box(&circuit),
                &library,
                16,
                5,
                &BlockDriver::sequential(),
            )
        });
    });
    c.bench_function("parallel/observability_16_blocks_auto_threads", |b| {
        b.iter(|| {
            LeakageObservability::compute_sampled_with(
                black_box(&circuit),
                &library,
                16,
                5,
                &BlockDriver::auto(),
            )
        });
    });
}

criterion_group!(benches, parallel_blocks);
criterion_main!(benches);
