//! Scan-shift replay bench: the scalar event-driven `ScanShiftSim` vs the
//! packed 64-pattern `PackedScanShiftSim` on the raw replay (transition
//! counting only) and with the static-power observer attached (lane-parallel
//! ternary-table lookup and the scalar-lookup cross-check), the
//! leakage-lookup seam in isolation (scalar vs lane-parallel, ± X density),
//! the packed propagation seam (`event_driven` group: full-sweep vs
//! event-driven cycles, ± observer, on a high-activity traditional config
//! and a low-activity held-PI/forced-chain config), the lane-width seam
//! (`wide_replay` group: the same 512-pattern replay in 64-, 256- and
//! 512-lane blocks, bare and observer-attached, plus the low-activity
//! observer with and without LintFacts gate skipping), plus the multi-circuit
//! Table I harness at 1 worker thread vs the automatic count. All
//! comparisons are bit-identical by construction — asserted once before
//! timing — so the bench measures speed only. A snapshot of the measured
//! means lives in `BENCH_scan_shift.json` at the repository root.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use scanpower_bench::{bench_circuit, bench_options};
use scanpower_core::experiment::{run_table1, ExperimentOptions};
use scanpower_lint::LintFacts;
use scanpower_netlist::generator::CircuitFamily;
use scanpower_power::{
    LeakageAverage, LeakageEstimator, LeakageLibrary, LeakageLookup, PackedShiftLeakage,
};
use scanpower_sim::kernel::pack_logic_patterns;
use scanpower_sim::patterns::random_bool_patterns;
use scanpower_sim::scan::{ScanPattern, ScanShiftSim, ShiftConfig, ShiftPhase};
use scanpower_sim::{
    BlockDriver, Logic, PackedScanShiftSim, PackedWord, Propagation, SimKernel, Wide256, Wide512,
};

fn replay_patterns(
    circuit: &scanpower_netlist::Netlist,
    count: usize,
    seed: u64,
) -> Vec<ScanPattern> {
    let pi = circuit.primary_inputs().len();
    let ff = circuit.dff_count();
    random_bool_patterns(pi + ff, count, seed)
        .into_iter()
        .map(|bits| ScanPattern::from_bools(&bits[..pi], &bits[pi..]))
        .collect()
}

fn scan_shift(c: &mut Criterion) {
    let circuit = bench_circuit("s1238");
    let patterns = replay_patterns(&circuit, 128, 7);
    let config = ShiftConfig::traditional(circuit.dff_count());
    let scalar = ScanShiftSim::new(&circuit);
    let packed = PackedScanShiftSim::new(&circuit);
    assert_eq!(
        scalar.run(&circuit, &patterns, &config),
        packed.run(&circuit, &patterns, &config),
        "packed replay must be bit-identical to the scalar replay"
    );

    let mut group = c.benchmark_group("scan_shift");
    group.sample_size(10);
    group.bench_function("replay_128_scalar", |b| {
        b.iter(|| scalar.run(black_box(&circuit), &patterns, &config));
    });
    group.bench_function("replay_128_packed", |b| {
        b.iter(|| packed.run(black_box(&circuit), &patterns, &config));
    });

    // With the leakage observer attached (the Table I configuration).
    // `estimator` gathers from the precomputed ternary tables (the
    // default); `scalar_lookup` re-runs the per-gate-per-lane subset
    // enumeration — the pre-precompute observer path, kept measurable.
    let library = LeakageLibrary::cmos45();
    let estimator = LeakageEstimator::new(&circuit, &library);
    let scalar_lookup = LeakageEstimator::with_lookup(&circuit, &library, LeakageLookup::Scalar);
    group.bench_function("replay_128_scalar_with_leakage", |b| {
        b.iter(|| {
            let mut average = LeakageAverage::new();
            let stats = scalar.run_with_observer(
                black_box(&circuit),
                &patterns,
                &config,
                |phase, values| {
                    if phase == ShiftPhase::Shift {
                        average.add(estimator.circuit_leakage(&circuit, values));
                    }
                },
            );
            (stats, average)
        });
    });
    group.bench_function("replay_128_packed_with_leakage", |b| {
        b.iter(|| {
            let mut observer = PackedShiftLeakage::new(&circuit, &estimator);
            let stats = packed.run_with_observer(
                black_box(&circuit),
                &patterns,
                &config,
                |phase, values, lanes| observer.observe(phase, values, lanes),
            );
            (stats, observer.into_average())
        });
    });
    group.bench_function("replay_128_packed_with_leakage_scalar_lookup", |b| {
        b.iter(|| {
            let mut observer = PackedShiftLeakage::new(&circuit, &scalar_lookup);
            let stats = packed.run_with_observer(
                black_box(&circuit),
                &patterns,
                &config,
                |phase, values, lanes| observer.observe(phase, values, lanes),
            );
            (stats, observer.into_average())
        });
    });
    group.finish();

    // The leakage-lookup seam in isolation: one 64-lane circuit_leakage_lanes
    // sweep per iteration, scalar subset-enumeration lookup vs the
    // lane-parallel ternary-table gather, without X and at 20% X density
    // (X completions are what the scalar lookup re-enumerates per lane).
    let mut kernel = SimKernel::<PackedWord>::new(&circuit);
    let width = kernel.inputs().len();
    let mut group = c.benchmark_group("leakage_lookup");
    group.sample_size(10);
    for (label, x_density) in [("no_x", 0.0f64), ("x20", 0.2)] {
        let patterns: Vec<Vec<Logic>> = random_bool_patterns(width, 64, 11)
            .iter()
            .enumerate()
            .map(|(p, bits)| {
                bits.iter()
                    .enumerate()
                    .map(|(i, &bit)| {
                        // Deterministic sprinkle at the requested density.
                        if x_density > 0.0
                            && (p * width + i).is_multiple_of((1.0 / x_density) as usize)
                        {
                            Logic::X
                        } else {
                            Logic::from_bool(bit)
                        }
                    })
                    .collect()
            })
            .collect();
        let values = kernel
            .evaluate(&circuit, &pack_logic_patterns(&patterns))
            .to_vec();
        let fast = estimator.circuit_leakage_lanes(&circuit, &values, 64);
        let slow = scalar_lookup.circuit_leakage_lanes(&circuit, &values, 64);
        assert!(
            fast.iter()
                .zip(&slow)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "both lookups must be bit-identical"
        );
        let mut totals = Vec::new();
        group.bench_function(format!("lanes_64_scalar_lookup_{label}"), |b| {
            b.iter(|| {
                scalar_lookup.circuit_leakage_lanes_into(
                    black_box(&circuit),
                    &values,
                    64,
                    &mut totals,
                );
            });
        });
        group.bench_function(format!("lanes_64_lane_parallel_{label}"), |b| {
            b.iter(|| {
                estimator.circuit_leakage_lanes_into(black_box(&circuit), &values, 64, &mut totals);
            });
        });
    }
    group.finish();

    // The propagation seam: full-sweep vs event-driven packed cycles, bare
    // and observer-attached. `traditional` ripples random patterns through
    // an unforced chain — with 64 lanes per word nearly every net moves
    // every cycle, so event-driven ≈ full sweep there. `low_activity` holds
    // the PIs and forces two thirds of the chain (the shape the paper's
    // proposed structure engineers): most cones are quiet and the dirty
    // worklist skips them.
    let low_activity = {
        let mut config = ShiftConfig::with_pi_control(
            circuit.dff_count(),
            (0..circuit.primary_inputs().len())
                .map(|i| Logic::from_bool(i % 2 == 0))
                .collect(),
        );
        for (cell, forced) in config.forced_pseudo.iter_mut().enumerate() {
            if cell % 3 != 0 {
                *forced = Some(Logic::from_bool(cell % 2 == 0));
            }
        }
        config
    };
    let mut group = c.benchmark_group("event_driven");
    group.sample_size(10);
    for (label, config) in [("traditional", &config), ("low_activity", &low_activity)] {
        assert_eq!(
            packed.run_cycles(
                &circuit,
                &patterns,
                config,
                Propagation::EventDriven,
                |_| {}
            ),
            packed.run_cycles(&circuit, &patterns, config, Propagation::FullSweep, |_| {}),
            "propagation modes must be bit-identical ({label})"
        );
        for (mode_label, propagation) in [
            ("full_sweep", Propagation::FullSweep),
            ("event_driven", Propagation::EventDriven),
        ] {
            group.bench_function(format!("replay_128_{mode_label}_{label}"), |b| {
                b.iter(|| {
                    packed.run_cycles(black_box(&circuit), &patterns, config, propagation, |_| {})
                });
            });
            group.bench_function(format!("observer_128_{mode_label}_{label}"), |b| {
                b.iter(|| {
                    let mut observer = PackedShiftLeakage::new(&circuit, &estimator);
                    let stats = packed.run_cycles(
                        black_box(&circuit),
                        &patterns,
                        config,
                        propagation,
                        |cycle| observer.observe_cycle(cycle),
                    );
                    (stats, observer.into_average())
                });
            });
        }
    }
    group.finish();

    // The lane-width seam: the same event-driven replay at 64, 256 and 512
    // lanes per word, bare and with the leakage observer attached. 512
    // patterns fill eight 64-lane blocks, two 256-lane blocks or one
    // 512-lane block, so the wide rows amortise the per-block chain seed
    // and capture carry over more patterns per kernel pass.
    let wide_patterns = replay_patterns(&circuit, 512, 13);
    let reference = packed.run(&circuit, &wide_patterns, &config);
    assert_eq!(
        packed.run_wide::<Wide256>(&circuit, &wide_patterns, &config),
        reference,
        "256-lane replay must be bit-identical to the 64-lane replay"
    );
    assert_eq!(
        packed.run_wide::<Wide512>(&circuit, &wide_patterns, &config),
        reference,
        "512-lane replay must be bit-identical to the 64-lane replay"
    );
    let mut group = c.benchmark_group("wide_replay");
    group.sample_size(10);
    group.bench_function("replay_512_lanes_64", |b| {
        b.iter(|| packed.run(black_box(&circuit), &wide_patterns, &config));
    });
    group.bench_function("replay_512_lanes_256", |b| {
        b.iter(|| packed.run_wide::<Wide256>(black_box(&circuit), &wide_patterns, &config));
    });
    group.bench_function("replay_512_lanes_512", |b| {
        b.iter(|| packed.run_wide::<Wide512>(black_box(&circuit), &wide_patterns, &config));
    });
    group.bench_function("observer_512_lanes_64", |b| {
        b.iter(|| {
            let mut observer = PackedShiftLeakage::new(&circuit, &estimator);
            let stats = packed.run_cycles(
                black_box(&circuit),
                &wide_patterns,
                &config,
                Propagation::EventDriven,
                |cycle| observer.observe_cycle(cycle),
            );
            (stats, observer.into_average())
        });
    });
    group.bench_function("observer_512_lanes_256", |b| {
        b.iter(|| {
            let mut observer = PackedShiftLeakage::<Wide256>::new(&circuit, &estimator);
            let stats = packed.run_cycles_wide::<Wide256, _>(
                black_box(&circuit),
                &wide_patterns,
                &config,
                Propagation::EventDriven,
                |cycle| observer.observe_cycle(cycle),
            );
            (stats, observer.into_average())
        });
    });
    group.bench_function("observer_512_lanes_512", |b| {
        b.iter(|| {
            let mut observer = PackedShiftLeakage::<Wide512>::new(&circuit, &estimator);
            let stats = packed.run_cycles_wide::<Wide512, _>(
                black_box(&circuit),
                &wide_patterns,
                &config,
                Propagation::EventDriven,
                |cycle| observer.observe_cycle(cycle),
            );
            (stats, observer.into_average())
        });
    });

    // The LintFacts gate-skipping seam on the low-activity config: the
    // ternary constant propagation freezes the cones fed by the held PIs
    // and forced chain cells, and the observer gathers those gates once
    // instead of every cycle. The traditional config freezes nothing
    // (no value is held), so the skip is benched where it can act.
    let facts = LintFacts::analyze_shift(&circuit, &low_activity);
    println!(
        "\nwide_replay — low-activity facts freeze {} of {} gates",
        facts.static_gate_count(),
        circuit.gate_count()
    );
    assert!(
        facts.static_gate_count() > 0,
        "skip must have gates to skip"
    );
    {
        let mut plain = PackedShiftLeakage::new(&circuit, &estimator);
        let plain_stats = packed.run_cycles(
            &circuit,
            &wide_patterns,
            &low_activity,
            Propagation::EventDriven,
            |cycle| plain.observe_cycle(cycle),
        );
        let mut skipping = PackedShiftLeakage::with_facts(&circuit, &estimator, &facts);
        let skip_stats = packed.run_cycles(
            &circuit,
            &wide_patterns,
            &low_activity,
            Propagation::EventDriven,
            |cycle| skipping.observe_cycle(cycle),
        );
        assert_eq!(plain_stats, skip_stats);
        let (plain, skipping) = (plain.into_average(), skipping.into_average());
        assert_eq!(
            plain.average_na().to_bits(),
            skipping.average_na().to_bits(),
            "facts skipping must be bit-identical to the plain observer"
        );
    }
    for (label, with_facts) in [("", false), ("_facts_skip", true)] {
        group.bench_function(format!("observer_low_activity_512_lanes_64{label}"), |b| {
            b.iter(|| {
                let mut observer = match with_facts {
                    true => PackedShiftLeakage::with_facts(&circuit, &estimator, &facts),
                    false => PackedShiftLeakage::new(&circuit, &estimator),
                };
                let stats = packed.run_cycles(
                    black_box(&circuit),
                    &wide_patterns,
                    &low_activity,
                    Propagation::EventDriven,
                    |cycle| observer.observe_cycle(cycle),
                );
                (stats, observer.into_average())
            });
        });
        group.bench_function(format!("observer_low_activity_512_lanes_512{label}"), |b| {
            b.iter(|| {
                let mut observer = match with_facts {
                    true => PackedShiftLeakage::<Wide512>::with_facts(&circuit, &estimator, &facts),
                    false => PackedShiftLeakage::<Wide512>::new(&circuit, &estimator),
                };
                let stats = packed.run_cycles_wide::<Wide512, _>(
                    black_box(&circuit),
                    &wide_patterns,
                    &low_activity,
                    Propagation::EventDriven,
                    |cycle| observer.observe_cycle(cycle),
                );
                (stats, observer.into_average())
            });
        });
    }
    group.finish();

    // Multi-circuit Table I sharding: 1 thread vs automatic.
    let specs: Vec<CircuitFamily> = ["s344", "s382", "s444", "s510"]
        .iter()
        .map(|name| CircuitFamily::iscas89_like(name).expect("known circuit"))
        .collect();
    let sequential = ExperimentOptions {
        threads: 1,
        ..bench_options()
    };
    let automatic = ExperimentOptions {
        threads: 0,
        ..bench_options()
    };
    assert_eq!(
        run_table1(&specs, &sequential, Some(0.3), 1),
        run_table1(&specs, &automatic, Some(0.3), 1),
        "thread count must never change the report"
    );
    println!(
        "\nscan_shift — auto driver uses {} worker thread(s)",
        BlockDriver::auto().threads()
    );

    let mut group = c.benchmark_group("scan_shift");
    group.sample_size(10);
    group.bench_function("table1_4_circuits_1_thread", |b| {
        b.iter(|| run_table1(black_box(&specs), &sequential, Some(0.3), 1));
    });
    group.bench_function("table1_4_circuits_auto_threads", |b| {
        b.iter(|| run_table1(black_box(&specs), &automatic, Some(0.3), 1));
    });
    group.finish();
}

criterion_group!(benches, scan_shift);
criterion_main!(benches);
