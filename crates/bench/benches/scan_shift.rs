//! Scan-shift replay bench: the scalar event-driven `ScanShiftSim` vs the
//! packed 64-pattern `PackedScanShiftSim` on the raw replay (transition
//! counting only) and with the static-power observer attached, plus the
//! multi-circuit Table I harness at 1 worker thread vs the automatic count.
//! Both comparisons are bit-identical by construction — asserted once
//! before timing — so the bench measures speed only. A snapshot of the
//! measured means lives in `BENCH_scan_shift.json` at the repository root.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use scanpower_bench::{bench_circuit, bench_options};
use scanpower_core::experiment::{run_table1, ExperimentOptions};
use scanpower_netlist::generator::CircuitFamily;
use scanpower_power::{LeakageAverage, LeakageEstimator, LeakageLibrary, PackedShiftLeakage};
use scanpower_sim::patterns::random_bool_patterns;
use scanpower_sim::scan::{ScanPattern, ScanShiftSim, ShiftConfig, ShiftPhase};
use scanpower_sim::{BlockDriver, PackedScanShiftSim};

fn replay_patterns(
    circuit: &scanpower_netlist::Netlist,
    count: usize,
    seed: u64,
) -> Vec<ScanPattern> {
    let pi = circuit.primary_inputs().len();
    let ff = circuit.dff_count();
    random_bool_patterns(pi + ff, count, seed)
        .into_iter()
        .map(|bits| ScanPattern::from_bools(&bits[..pi], &bits[pi..]))
        .collect()
}

fn scan_shift(c: &mut Criterion) {
    let circuit = bench_circuit("s1238");
    let patterns = replay_patterns(&circuit, 128, 7);
    let config = ShiftConfig::traditional(circuit.dff_count());
    let scalar = ScanShiftSim::new(&circuit);
    let packed = PackedScanShiftSim::new(&circuit);
    assert_eq!(
        scalar.run(&circuit, &patterns, &config),
        packed.run(&circuit, &patterns, &config),
        "packed replay must be bit-identical to the scalar replay"
    );

    let mut group = c.benchmark_group("scan_shift");
    group.sample_size(10);
    group.bench_function("replay_128_scalar", |b| {
        b.iter(|| scalar.run(black_box(&circuit), &patterns, &config));
    });
    group.bench_function("replay_128_packed", |b| {
        b.iter(|| packed.run(black_box(&circuit), &patterns, &config));
    });

    // With the leakage observer attached (the Table I configuration).
    let library = LeakageLibrary::cmos45();
    let estimator = LeakageEstimator::new(&circuit, &library);
    group.bench_function("replay_128_scalar_with_leakage", |b| {
        b.iter(|| {
            let mut average = LeakageAverage::new();
            let stats = scalar.run_with_observer(
                black_box(&circuit),
                &patterns,
                &config,
                |phase, values| {
                    if phase == ShiftPhase::Shift {
                        average.add(estimator.circuit_leakage(&circuit, values));
                    }
                },
            );
            (stats, average)
        });
    });
    group.bench_function("replay_128_packed_with_leakage", |b| {
        b.iter(|| {
            let mut observer = PackedShiftLeakage::new(&circuit, &estimator);
            let stats = packed.run_with_observer(
                black_box(&circuit),
                &patterns,
                &config,
                |phase, values, lanes| observer.observe(phase, values, lanes),
            );
            (stats, observer.into_average())
        });
    });
    group.finish();

    // Multi-circuit Table I sharding: 1 thread vs automatic.
    let specs: Vec<CircuitFamily> = ["s344", "s382", "s444", "s510"]
        .iter()
        .map(|name| CircuitFamily::iscas89_like(name).expect("known circuit"))
        .collect();
    let sequential = ExperimentOptions {
        threads: 1,
        ..bench_options()
    };
    let automatic = ExperimentOptions {
        threads: 0,
        ..bench_options()
    };
    assert_eq!(
        run_table1(&specs, &sequential, Some(0.3), 1),
        run_table1(&specs, &automatic, Some(0.3), 1),
        "thread count must never change the report"
    );
    println!(
        "\nscan_shift — auto driver uses {} worker thread(s)",
        BlockDriver::auto().threads()
    );

    let mut group = c.benchmark_group("scan_shift");
    group.sample_size(10);
    group.bench_function("table1_4_circuits_1_thread", |b| {
        b.iter(|| run_table1(black_box(&specs), &sequential, Some(0.3), 1));
    });
    group.bench_function("table1_4_circuits_auto_threads", |b| {
        b.iter(|| run_table1(black_box(&specs), &automatic, Some(0.3), 1));
    });
    group.finish();
}

criterion_group!(benches, scan_shift);
criterion_main!(benches);
