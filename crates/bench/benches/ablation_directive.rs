//! Ablation A: the value of directing the controlled-input pattern search by
//! leakage observability. Prints the scan-mode leakage achieved with and
//! without the directive and benches both searches.

use criterion::{criterion_group, criterion_main, Criterion};

use scanpower_bench::bench_circuit;
use scanpower_core::{ProposedMethod, ProposedOptions};

fn ablation_directive(c: &mut Criterion) {
    let circuit = bench_circuit("s641");

    let directed_options = ProposedOptions {
        leakage_directed: true,
        reorder_inputs: false,
        ..ProposedOptions::default()
    };
    let undirected_options = ProposedOptions {
        leakage_directed: false,
        reorder_inputs: false,
        ..ProposedOptions::default()
    };

    let directed = ProposedMethod::new(directed_options.clone())
        .apply(&circuit)
        .expect("valid circuit");
    let undirected = ProposedMethod::new(undirected_options.clone())
        .apply(&circuit)
        .expect("valid circuit");
    println!(
        "\nAblation A (leakage-observability directive), scaled s641:\n  directed   scan-mode leakage: {:.0} nA (blocked {}/{})\n  undirected scan-mode leakage: {:.0} nA (blocked {}/{})\n",
        directed.scan_mode_leakage_na,
        directed.pattern.stats.blocked_gates,
        directed.pattern.stats.blocked_gates + directed.pattern.stats.unblocked_gates,
        undirected.scan_mode_leakage_na,
        undirected.pattern.stats.blocked_gates,
        undirected.pattern.stats.blocked_gates + undirected.pattern.stats.unblocked_gates,
    );

    let mut group = c.benchmark_group("ablation_directive");
    group.sample_size(10);
    group.bench_function("directed", |b| {
        b.iter(|| {
            ProposedMethod::new(directed_options.clone())
                .apply(&circuit)
                .unwrap()
        });
    });
    group.bench_function("undirected", |b| {
        b.iter(|| {
            ProposedMethod::new(undirected_options.clone())
                .apply(&circuit)
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, ablation_directive);
criterion_main!(benches);
