//! Ablation C: how the power reduction scales with the fraction of scan
//! cells that are allowed to take a multiplexer.

use criterion::{criterion_group, criterion_main, Criterion};

use scanpower_bench::{bench_circuit, bench_options_with, run_comparison};
use scanpower_core::ProposedOptions;

fn ablation_mux_coverage(c: &mut Criterion) {
    let circuit = bench_circuit("s641");

    println!("\nAblation C (MUX coverage sweep), scaled s641:");
    println!(
        "{:>10} {:>16} {:>12} {:>10} {:>10}",
        "fraction", "dyn (uW/Hz)", "static (uW)", "dyn% vs T", "stat% vs T"
    );
    for fraction in [0.0, 0.5, 1.0] {
        let row = run_comparison(
            &circuit,
            &bench_options_with(ProposedOptions {
                mux_fraction: Some(fraction),
                ..ProposedOptions::default()
            }),
        );
        println!(
            "{:>10.2} {:>16.4e} {:>12.2} {:>10.2} {:>10.2}",
            fraction,
            row.proposed.dynamic_per_hz_uw,
            row.proposed.static_uw,
            row.dynamic_improvement_vs_traditional(),
            row.static_improvement_vs_traditional()
        );
    }
    println!();

    let mut group = c.benchmark_group("ablation_mux_coverage");
    group.sample_size(10);
    for fraction in [0.0, 1.0] {
        group.bench_function(format!("fraction_{fraction}"), |b| {
            let options = bench_options_with(ProposedOptions {
                mux_fraction: Some(fraction),
                ..ProposedOptions::default()
            });
            b.iter(|| run_comparison(&circuit, &options));
        });
    }
    group.finish();
}

criterion_group!(benches, ablation_mux_coverage);
criterion_main!(benches);
