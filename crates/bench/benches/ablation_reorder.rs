//! Ablation B: the contribution and the cost of the leakage-driven gate
//! input reordering step (the "01 vs 10" optimisation of Figure 2).

use criterion::{criterion_group, criterion_main, Criterion};

use scanpower_bench::{bench_circuit, bench_options_with, run_comparison};
use scanpower_core::ProposedOptions;
use scanpower_power::{reorder, LeakageLibrary};
use scanpower_sim::{Evaluator, Logic};

fn ablation_reorder(c: &mut Criterion) {
    let circuit = bench_circuit("s1238");

    let with = run_comparison(
        &circuit,
        &bench_options_with(ProposedOptions {
            reorder_inputs: true,
            ..ProposedOptions::default()
        }),
    );
    let without = run_comparison(
        &circuit,
        &bench_options_with(ProposedOptions {
            reorder_inputs: false,
            ..ProposedOptions::default()
        }),
    );
    println!(
        "\nAblation B (gate input reordering), scaled s1238:\n  with reordering    static {:.2} uW\n  without reordering static {:.2} uW\n",
        with.proposed.static_uw, without.proposed.static_uw
    );

    // Bench the reordering pass itself on a fixed circuit state.
    let library = LeakageLibrary::cmos45();
    let evaluator = Evaluator::new(&circuit);
    let values = evaluator.evaluate(&circuit, &vec![Logic::Zero; evaluator.inputs().len()]);
    let mut group = c.benchmark_group("ablation_reorder");
    group.sample_size(20);
    group.bench_function("reorder_pass", |b| {
        b.iter_batched(
            || circuit.clone(),
            |mut netlist| reorder::optimize(&mut netlist, &library, &values),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, ablation_reorder);
criterion_main!(benches);
