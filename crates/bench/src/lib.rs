//! Shared fixtures for the `scanpower` benchmark harness.
//!
//! Every table and figure of the paper's evaluation has a Criterion bench in
//! `benches/`:
//!
//! | Paper artefact | Bench target | What it measures / prints |
//! |---|---|---|
//! | Table I | `table1` | per-circuit dynamic & static scan power of the three structures (printed), plus the runtime of the full per-circuit flow |
//! | Figure 2 | `figure2` | the NAND2 leakage table (printed) and the cost of leakage-table / circuit-leakage queries |
//! | Ablation A | `ablation_directive` | leakage-observability-directed vs undirected pattern search |
//! | Ablation B | `ablation_reorder` | effect and cost of gate input reordering |
//! | Ablation C | `ablation_mux_coverage` | power vs fraction of multiplexed scan cells |
//! | — | `parallel_blocks` | block-parallel driver speed-up (sequential vs auto threads) on the IVC search and sampled observability |
//! | — | `scan_shift` | scalar vs packed 64-pattern scan-shift replay, and the multi-circuit Table I sharding at 1 vs auto threads (snapshot: `BENCH_scan_shift.json`) |
//! | — | `result_cache` | content-addressed result cache on the Table I flow: uncached baseline vs cold miss vs warm in-memory hit vs disk-tier hit (snapshot: `BENCH_cache.json`) |
//!
//! The benches intentionally run on *scaled* synthetic circuits so that
//! `cargo bench --workspace` finishes in minutes; the full-size Table I
//! numbers are produced by `cargo run --release --example table1_report`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use scanpower_core::experiment::{CircuitExperiment, CircuitRow, ExperimentOptions};
use scanpower_core::ProposedOptions;
use scanpower_netlist::generator::CircuitFamily;
use scanpower_netlist::Netlist;

/// Circuits used by the benches, scaled to keep Criterion runs affordable.
pub const BENCH_CIRCUITS: &[&str] = &["s344", "s641", "s1238"];

/// Scale factor applied to the synthetic circuits in the benches.
pub const BENCH_SCALE: f64 = 0.5;

/// Generates the scaled benchmark circuit for `name`.
///
/// # Panics
///
/// Panics if `name` is not an ISCAS89 circuit name.
#[must_use]
pub fn bench_circuit(name: &str) -> Netlist {
    CircuitFamily::iscas89_like(name)
        .expect("known circuit")
        .scaled(BENCH_SCALE)
        .generate(1)
}

/// Experiment options used by the benches (fast ATPG, small pattern budget).
#[must_use]
pub fn bench_options() -> ExperimentOptions {
    ExperimentOptions::fast()
}

/// Experiment options with a customised proposed-flow configuration.
#[must_use]
pub fn bench_options_with(proposed: ProposedOptions) -> ExperimentOptions {
    let mut options = ExperimentOptions::fast();
    options.proposed = proposed;
    options
}

/// Runs the three-structure comparison for one circuit with the bench
/// options (used both to print the reproduced rows and as the benched body).
#[must_use]
pub fn run_comparison(netlist: &Netlist, options: &ExperimentOptions) -> CircuitRow {
    CircuitExperiment::new(options.clone()).run(netlist)
}
