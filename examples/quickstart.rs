//! Quickstart: apply the proposed low-power scan structure to the ISCAS89
//! `s27` benchmark and print what the flow decided.
//!
//! Run with `cargo run --release --example quickstart`.

use scanpower_suite::core::experiment::{CircuitExperiment, ExperimentOptions};
use scanpower_suite::core::ProposedMethod;
use scanpower_suite::netlist::bench;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = bench::parse(bench::S27_BENCH, "s27")?;
    println!(
        "circuit {}: {} gates, {} scan cells, {} primary inputs",
        circuit.name(),
        circuit.gate_count(),
        circuit.dff_count(),
        circuit.primary_inputs().len()
    );

    // Apply the proposed method: AddMUX, leakage-directed control pattern,
    // don't-care filling, MUX insertion and gate input reordering.
    let result = ProposedMethod::default().apply(&circuit)?;
    println!(
        "AddMUX: {}/{} scan cells multiplexed (critical delay {:.1} ps)",
        result.structure.muxed_count(),
        circuit.dff_count(),
        result.plan.critical_delay
    );
    println!(
        "control pattern: {} transition gates blocked, {} unblocked, {} decisions",
        result.pattern.stats.blocked_gates,
        result.pattern.stats.unblocked_gates,
        result.pattern.stats.decisions
    );
    println!(
        "scan-mode leakage estimate: {:.1} nA ({} reordered gates)",
        result.scan_mode_leakage_na,
        result.reorder.map(|r| r.gates_changed).unwrap_or(0)
    );

    // Compare the three structures on a generated test set.
    let row = CircuitExperiment::new(ExperimentOptions::fast()).run(&circuit);
    println!("\n              dynamic (uW/Hz)      static (uW)");
    println!(
        "traditional   {:>14.4e} {:>16.3}",
        row.traditional.dynamic_per_hz_uw, row.traditional.static_uw
    );
    println!(
        "input control {:>14.4e} {:>16.3}",
        row.input_control.dynamic_per_hz_uw, row.input_control.static_uw
    );
    println!(
        "proposed      {:>14.4e} {:>16.3}",
        row.proposed.dynamic_per_hz_uw, row.proposed.static_uw
    );
    println!(
        "improvement vs traditional: dynamic {:.1}%, static {:.1}%",
        row.dynamic_improvement_vs_traditional(),
        row.static_improvement_vs_traditional()
    );
    Ok(())
}
