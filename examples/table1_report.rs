//! Regenerates Table I of the paper: dynamic and static scan power of the
//! traditional scan structure, the input-control structure \[8\] and the
//! proposed structure, for the twelve ISCAS89-sized circuits.
//!
//! Run with `cargo run --release --example table1_report`.
//!
//! Environment knobs:
//!
//! * `SCANPOWER_CIRCUITS` — comma-separated circuit names (default: all 12);
//! * `SCANPOWER_SCALE`    — shrink factor for the synthetic circuits, e.g.
//!   `0.25` for a quick smoke run (default: 1.0);
//! * `SCANPOWER_PATTERNS` — cap on the number of scan test patterns
//!   (default: 32);
//! * `SCANPOWER_SEED`     — synthetic-netlist seed (default: 1).

use scanpower_suite::core::experiment::{CircuitExperiment, ExperimentOptions, Table1Report};
use scanpower_suite::netlist::generator::{CircuitFamily, TABLE1_CIRCUITS};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuits: Vec<String> = std::env::var("SCANPOWER_CIRCUITS")
        .map(|s| s.split(',').map(|c| c.trim().to_owned()).collect())
        .unwrap_or_else(|_| TABLE1_CIRCUITS.iter().map(|&c| c.to_owned()).collect());
    let scale: f64 = std::env::var("SCANPOWER_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let max_patterns: usize = std::env::var("SCANPOWER_PATTERNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let seed: u64 = std::env::var("SCANPOWER_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    let specs = circuits
        .iter()
        .map(|name| CircuitFamily::iscas89_like(name))
        .collect::<Result<Vec<_>, _>>()?;

    let mut options = ExperimentOptions::fast();
    options.max_patterns = Some(max_patterns);

    eprintln!(
        "running Table I reproduction: {} circuits, scale {scale}, {max_patterns} patterns, seed {seed}",
        specs.len()
    );
    let experiment = CircuitExperiment::new(options);
    let mut rows = Vec::new();
    for spec in &specs {
        let spec = if (scale - 1.0).abs() < f64::EPSILON {
            spec.clone()
        } else {
            spec.scaled(scale)
        };
        let circuit = spec.generate(seed);
        let row = experiment.run(&circuit);
        eprintln!(
            "{:<8} dyn(/f): {:.3e} -> {:.3e} uW/Hz ({:+.1}%)   static: {:.2} -> {:.2} uW ({:+.1}%)",
            row.circuit,
            row.traditional.dynamic_per_hz_uw,
            row.proposed.dynamic_per_hz_uw,
            -row.dynamic_improvement_vs_traditional(),
            row.traditional.static_uw,
            row.proposed.static_uw,
            -row.static_improvement_vs_traditional(),
        );
        rows.push(row);
    }
    let report = Table1Report { rows };
    println!("{}", report.to_table_string());
    println!(
        "average improvement vs traditional scan: dynamic {:.1}%, static {:.1}%",
        report.average_dynamic_improvement(),
        report.average_static_improvement()
    );
    Ok(())
}
