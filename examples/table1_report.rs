//! Regenerates Table I of the paper: dynamic and static scan power of the
//! traditional scan structure, the input-control structure \[8\] and the
//! proposed structure, for the twelve ISCAS89-sized circuits.
//!
//! Run with `cargo run --release --example table1_report`.
//!
//! The circuits are sharded across worker threads (one `BlockDriver` job
//! per circuit) and replayed on the packed 64-pattern scan-shift simulator;
//! the report is bit-identical for any thread count.
//!
//! Flags:
//!
//! * `--cache` — attach the content-addressed result cache and run the
//!   table twice: the cold pass fills the cache, the warm pass is served
//!   entirely from it (the reported hit count equals the circuit count).
//!   Both passes print the cache's hit/miss counters.
//! * `--cache-dir <path>` — like `--cache`, but also persist entries to
//!   `<path>` as `<key>.wire` files, so a *later process* starts warm.
//!
//! Environment knobs:
//!
//! * `SCANPOWER_CIRCUITS` — comma-separated circuit names (default: all 12);
//! * `SCANPOWER_SCALE`    — shrink factor for the synthetic circuits, e.g.
//!   `0.25` for a quick smoke run (default: 1.0);
//! * `SCANPOWER_PATTERNS` — cap on the number of scan test patterns
//!   (default: 32);
//! * `SCANPOWER_SEED`     — synthetic-netlist seed (default: 1);
//! * `SCANPOWER_THREADS`  — worker threads for the multi-circuit sharding
//!   (default: one per hardware thread).

use std::sync::Arc;

use scanpower_suite::cache::ResultCache;
use scanpower_suite::core::experiment::{run_table1, ExperimentOptions, ResultCacheHandle};
use scanpower_suite::netlist::generator::{CircuitFamily, TABLE1_CIRCUITS};
use scanpower_suite::sim::BlockDriver;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cache_enabled = false;
    let mut cache_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cache" => cache_enabled = true,
            "--cache-dir" => {
                cache_enabled = true;
                cache_dir = Some(args.next().ok_or("--cache-dir needs a path")?);
            }
            other => return Err(format!("unknown argument `{other}`").into()),
        }
    }

    let circuits: Vec<String> = std::env::var("SCANPOWER_CIRCUITS")
        .map(|s| s.split(',').map(|c| c.trim().to_owned()).collect())
        .unwrap_or_else(|_| TABLE1_CIRCUITS.iter().map(|&c| c.to_owned()).collect());
    let scale: f64 = std::env::var("SCANPOWER_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let max_patterns: usize = std::env::var("SCANPOWER_PATTERNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let seed: u64 = std::env::var("SCANPOWER_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    let specs = circuits
        .iter()
        .map(|name| CircuitFamily::iscas89_like(name))
        .collect::<Result<Vec<_>, _>>()?;

    let mut options = ExperimentOptions::fast();
    options.max_patterns = Some(max_patterns);
    let cache = cache_enabled.then(|| {
        let cache = Arc::new(match &cache_dir {
            Some(dir) => ResultCache::with_disk(dir),
            None => ResultCache::in_memory(),
        });
        options.result_cache = ResultCacheHandle::new(Arc::clone(&cache));
        cache
    });

    eprintln!(
        "running Table I reproduction: {} circuits, scale {scale}, {max_patterns} patterns, \
         seed {seed}, {} worker thread(s), packed scan replay, cache {}",
        specs.len(),
        BlockDriver::new(options.threads).threads(),
        match (&cache, &cache_dir) {
            (Some(_), Some(dir)) => format!("on (disk tier: {dir})"),
            (Some(_), None) => "on (memory only)".to_owned(),
            (None, _) => "off".to_owned(),
        }
    );
    let scale = if (scale - 1.0).abs() < f64::EPSILON {
        None
    } else {
        Some(scale)
    };
    let report = run_table1(&specs, &options, scale, seed);
    if let Some(cache) = &cache {
        let stats = cache.stats();
        eprintln!(
            "cache after cold pass: {} hits, {} disk hits, {} misses, {} entries ({} bytes)",
            stats.hits, stats.disk_hits, stats.misses, stats.entries, stats.bytes
        );
        // A warm pass over the same inputs is served entirely from the
        // cache — one row-level hit per circuit, the replay skipped.
        let warm = run_table1(&specs, &options, scale, seed);
        assert_eq!(warm, report, "cached rows are byte-identical");
        let stats = cache.stats();
        eprintln!(
            "cache after warm pass: {} hits, {} disk hits, {} misses ({} circuits)",
            stats.hits,
            stats.disk_hits,
            stats.misses,
            specs.len()
        );
    }
    for row in &report.rows {
        eprintln!(
            "{:<8} dyn(/f): {:.3e} -> {:.3e} uW/Hz ({:+.1}%)   static: {:.2} -> {:.2} uW ({:+.1}%)",
            row.circuit,
            row.traditional.dynamic_per_hz_uw,
            row.proposed.dynamic_per_hz_uw,
            -row.dynamic_improvement_vs_traditional(),
            row.traditional.static_uw,
            row.proposed.static_uw,
            -row.static_improvement_vs_traditional(),
        );
    }
    println!("{}", report.to_table_string());
    println!(
        "average improvement vs traditional scan: dynamic {:.1}%, static {:.1}%",
        report.average_dynamic_improvement(),
        report.average_static_improvement()
    );
    Ok(())
}
