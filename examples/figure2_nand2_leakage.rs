//! Regenerates Figure 2 of the paper: the leakage current of a NAND2 gate in
//! the 45 nm library for every input state, plus the companion tables for
//! the other library cells the algorithms rely on.
//!
//! Run with `cargo run --release --example figure2_nand2_leakage`.

use scanpower_suite::netlist::GateKind;
use scanpower_suite::power::LeakageLibrary;

fn main() {
    let library = LeakageLibrary::cmos45();

    println!(
        "Figure 2 — NAND2 leakage current, 45 nm, VDD = {} V",
        library.supply()
    );
    println!("  A B | leakage (nA)");
    for state in 0..4u32 {
        let a = state & 1;
        let b = (state >> 1) & 1;
        println!(
            "  {a} {b} | {:8.1}",
            library.gate_leakage(GateKind::Nand, 2, state)
        );
    }

    for (kind, fanin, label) in [
        (GateKind::Not, 1, "INV"),
        (GateKind::Nor, 2, "NOR2"),
        (GateKind::Nand, 3, "NAND3"),
        (GateKind::Nor, 3, "NOR3"),
        (GateKind::Mux, 3, "MUX2 (select, a, b)"),
    ] {
        println!("\n{label} leakage per input state (nA)");
        for state in 0..(1u32 << fanin) {
            let bits: String = (0..fanin)
                .map(|p| if (state >> p) & 1 == 1 { '1' } else { '0' })
                .collect();
            println!(
                "  {bits} | {:8.1}",
                library.gate_leakage(kind, fanin, state)
            );
        }
    }

    println!(
        "\nbest NAND2 state: {:02b} (the \"01 vs 10\" asymmetry exploited by input reordering)",
        library.best_state(GateKind::Nand, 2)
    );
}
