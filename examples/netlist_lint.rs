//! Lints netlists and exits non-zero when any Error-severity diagnostic is
//! found, so CI can gate on it.
//!
//! Run with `cargo run --release --example netlist_lint [FILE.bench ...]`.
//!
//! With file arguments, each file is parsed and linted through the
//! [`lint_bench`] front door (parse errors become `SPL009`/`SPL003`
//! diagnostics with line numbers instead of aborting the run). Without
//! arguments, the example lints the embedded `s27` benchmark plus the
//! synthetic Table I circuits.
//!
//! Environment knobs (for the no-argument mode):
//!
//! * `SCANPOWER_CIRCUITS` — comma-separated Table I circuit names
//!   (default: all 12);
//! * `SCANPOWER_SCALE`    — shrink factor for the synthetic circuits, e.g.
//!   `0.25` for a quick smoke run (default: 1.0);
//! * `SCANPOWER_SEED`     — synthetic-netlist seed (default: 1);
//! * `SCANPOWER_JSON`     — set to `1` to print machine-readable JSON
//!   reports instead of text.

use scanpower_suite::lint::{lint_bench, lint_netlist, LintReport, Severity};
use scanpower_suite::netlist::bench;
use scanpower_suite::netlist::generator::{CircuitFamily, TABLE1_CIRCUITS};

fn print_report(report: &LintReport, json: bool) {
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let json = std::env::var("SCANPOWER_JSON").is_ok_and(|v| v == "1");
    let files: Vec<String> = std::env::args().skip(1).collect();

    let mut reports: Vec<LintReport> = Vec::new();
    if files.is_empty() {
        let circuits: Vec<String> = std::env::var("SCANPOWER_CIRCUITS")
            .map(|s| s.split(',').map(|c| c.trim().to_owned()).collect())
            .unwrap_or_else(|_| TABLE1_CIRCUITS.iter().map(|&c| c.to_owned()).collect());
        let scale: f64 = std::env::var("SCANPOWER_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1.0);
        let seed: u64 = std::env::var("SCANPOWER_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1);

        eprintln!(
            "linting the embedded s27 and {} synthetic Table I circuit(s) at scale {scale}",
            circuits.len()
        );
        reports.push(lint_bench(bench::S27_BENCH, "s27").report);
        for name in &circuits {
            let mut spec = CircuitFamily::iscas89_like(name)?;
            if (scale - 1.0).abs() > f64::EPSILON {
                spec = spec.scaled(scale);
            }
            let netlist = spec.generate(seed);
            reports.push(lint_netlist(&netlist));
        }
    } else {
        for path in &files {
            let text = std::fs::read_to_string(path)?;
            reports.push(lint_bench(&text, path).report);
        }
    }

    let mut errors = 0;
    let mut warnings = 0;
    for report in &reports {
        print_report(report, json);
        errors += report.count(Severity::Error);
        warnings += report.count(Severity::Warning);
    }
    eprintln!(
        "linted {} netlist(s): {errors} error(s), {warnings} warning(s)",
        reports.len()
    );
    if errors > 0 {
        std::process::exit(1);
    }
    Ok(())
}
