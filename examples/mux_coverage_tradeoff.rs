//! Ablation: how the power reduction of the proposed structure depends on
//! how many scan cells are allowed to take a multiplexer.
//!
//! The paper always multiplexes every non-critical pseudo-input; this sweep
//! shows what is lost when only a fraction of them can be modified (for
//! example because of area constraints), which is the trade-off a user of
//! the library would want to understand.
//!
//! Run with `cargo run --release --example mux_coverage_tradeoff`.

use scanpower_suite::core::experiment::{CircuitExperiment, ExperimentOptions};
use scanpower_suite::core::ProposedOptions;
use scanpower_suite::netlist::generator::CircuitFamily;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::var("SCANPOWER_CIRCUIT").unwrap_or_else(|_| "s641".to_owned());
    let circuit = CircuitFamily::iscas89_like(&name)?.generate(1);
    println!(
        "circuit {name}: {} gates, {} scan cells",
        circuit.gate_count(),
        circuit.dff_count()
    );
    println!(
        "{:>10} {:>16} {:>12} {:>10} {:>10}",
        "mux frac", "dyn (uW/Hz)", "static (uW)", "dyn% vs T", "stat% vs T"
    );

    for fraction in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut options = ExperimentOptions::fast();
        options.proposed = ProposedOptions {
            mux_fraction: Some(fraction),
            ..ProposedOptions::default()
        };
        let row = CircuitExperiment::new(options).run(&circuit);
        println!(
            "{:>10.2} {:>16.4e} {:>12.2} {:>10.2} {:>10.2}",
            fraction,
            row.proposed.dynamic_per_hz_uw,
            row.proposed.static_uw,
            row.dynamic_improvement_vs_traditional(),
            row.static_improvement_vs_traditional()
        );
    }
    Ok(())
}
