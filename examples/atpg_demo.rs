//! Demonstrates the ATPG substrate (the ATOM substitute): generates a
//! compact stuck-at test set for an ISCAS89-sized circuit and reports the
//! coverage split between the random and the deterministic (PODEM) phase.
//!
//! Run with `cargo run --release --example atpg_demo`.

use scanpower_suite::atpg::{AtpgConfig, AtpgFlow};
use scanpower_suite::netlist::generator::CircuitFamily;
use scanpower_suite::netlist::stats::CircuitStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::var("SCANPOWER_CIRCUIT").unwrap_or_else(|_| "s510".to_owned());
    let circuit = CircuitFamily::iscas89_like(&name)?.generate(1);
    let stats = CircuitStats::of(&circuit);
    println!(
        "circuit {name}: {} gates ({} NAND / {} NOR / {} INV), depth {}, {} scan cells",
        stats.gates, stats.nands, stats.nors, stats.inverters, stats.depth, stats.flip_flops
    );

    let test_set = AtpgFlow::new(AtpgConfig::default()).run(&circuit);
    println!("patterns generated : {}", test_set.patterns.len());
    println!("  from random phase: {}", test_set.random_patterns);
    println!("  from PODEM phase : {}", test_set.deterministic_patterns);
    println!("fault list         : {}", test_set.total_faults);
    println!("  detected         : {}", test_set.detected_faults);
    println!("  untestable       : {}", test_set.untestable_faults);
    println!("  aborted          : {}", test_set.aborted_faults);
    println!(
        "fault coverage     : {:.2} %",
        test_set.fault_coverage * 100.0
    );
    Ok(())
}
