//! Drives the scan-power job service end to end, over both transports.
//!
//! Run with `cargo run --release --example serve_demo`.
//!
//! The demo starts one server (shared result cache, background workers),
//! then exercises the headline guarantee of the service front-end:
//!
//! 1. **Local transport** — submits the Table I circuits over the
//!    in-process `LocalTransport` and prints each `RowReady` as it
//!    streams in (spec order, incremental — not a batch at the end).
//! 2. **Warm resubmission** — submits the *same* circuits again in a
//!    shuffled order with a different harness thread count; every row
//!    comes back byte-identical and the `JobDone` frame reports one
//!    cache hit per circuit (no replay ran).
//! 3. **TCP transport** — repeats the submission over a real
//!    `std::net::TcpListener` socket and checks the row bytes match the
//!    local transport's, byte for byte.
//!
//! Environment knobs (same family as `table1_report`):
//!
//! * `SCANPOWER_CIRCUITS` — comma-separated circuit names (default:
//!   `s344,s382,s444,s510`);
//! * `SCANPOWER_SCALE`    — shrink factor for the synthetic circuits
//!   (default: `0.3` for a quick demo; use `1.0` for full size);
//! * `SCANPOWER_SEED`     — synthetic-netlist seed (default: 1);
//! * `SCANPOWER_THREADS`  — harness worker threads of the first
//!   submission (default: 1; the resubmission always uses a different
//!   count to demonstrate bit-identity).

use std::net::TcpStream;

use scanpower_suite::core::experiment::ExperimentOptions;
use scanpower_suite::netlist::generator::CircuitFamily;
use scanpower_suite::serve::protocol::{CircuitSource, JobSpec, Response, RowOutcome};
use scanpower_suite::serve::transport::{LocalTransport, StreamConnection, TcpTransport};
use scanpower_suite::serve::{DrainedJob, ServeClient, ServeConfig, Server};

fn job_spec(order: &[String], scale: Option<f64>, seed: u64, threads: usize) -> JobSpec {
    JobSpec {
        circuits: order
            .iter()
            .map(|name| CircuitSource::Family {
                spec: CircuitFamily::iscas89_like(name).expect("known circuit"),
                scale,
                seed,
            })
            .collect(),
        options: ExperimentOptions {
            threads,
            ..ExperimentOptions::fast()
        },
    }
}

fn print_rows(label: &str, order: &[String], drained: &DrainedJob) {
    for event in &drained.rows {
        match &event.response {
            Response::RowReady {
                outcome: RowOutcome::Row(row),
                index,
                ..
            } => eprintln!(
                "[{label}] row {index} ({:<6}): dyn(/f) {:.3e} -> {:.3e} uW/Hz, \
                 static {:.2} -> {:.2} uW",
                row.circuit,
                row.traditional.dynamic_per_hz_uw,
                row.proposed.dynamic_per_hz_uw,
                row.traditional.static_uw,
                row.proposed.static_uw,
            ),
            Response::RowReady {
                outcome: RowOutcome::Failed { message },
                index,
                ..
            } => eprintln!(
                "[{label}] row {index} ({}): FAILED: {message}",
                order[*index]
            ),
            other => eprintln!("[{label}] unexpected event: {other:?}"),
        }
    }
    if let Response::JobDone {
        rows,
        failures,
        cache_hits,
        ..
    } = drained.end
    {
        eprintln!("[{label}] done: {rows} rows, {failures} failures, {cache_hits} cache hits");
    }
}

/// The `RowOutcome` bytes of each row frame, keyed by circuit name —
/// job ids and slot indices differ between submissions, the row bytes
/// must not. Layout: 4 magic + 2 version + 1 tag + 8 job + 8 index.
fn outcome_bytes<'a>(order: &'a [String], drained: &DrainedJob) -> Vec<(&'a str, Vec<u8>)> {
    drained
        .rows
        .iter()
        .map(|event| (order[event.index].as_str(), event.frame[23..].to_vec()))
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuits: Vec<String> = std::env::var("SCANPOWER_CIRCUITS")
        .map(|s| s.split(',').map(|c| c.trim().to_owned()).collect())
        .unwrap_or_else(|_| ["s344", "s382", "s444", "s510"].map(String::from).to_vec());
    let scale: f64 = std::env::var("SCANPOWER_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.3);
    let seed: u64 = std::env::var("SCANPOWER_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let threads: usize = std::env::var("SCANPOWER_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let scale = ((scale - 1.0).abs() > f64::EPSILON).then_some(scale);

    let server = Server::new(ServeConfig::default());

    // 1. Local transport: submit and stream.
    let (local, connector) = LocalTransport::new();
    let local_listener = server.spawn_listener(local);
    let mut client = ServeClient::new(connector.connect()?);
    eprintln!(
        "submitting {} circuits over LocalTransport ({threads} harness thread(s))...",
        circuits.len()
    );
    let cold = client.run_job(&job_spec(&circuits, scale, seed, threads))?;
    print_rows("local/cold", &circuits, &cold);
    let reference = outcome_bytes(&circuits, &cold);

    // 2. Warm resubmission: shuffled order, different thread count.
    let mut shuffled = circuits.clone();
    let rotation = 1.min(shuffled.len() - 1);
    shuffled.rotate_left(rotation);
    eprintln!(
        "resubmitting shuffled ({}) with auto threads...",
        shuffled.join(",")
    );
    let warm = client.run_job(&job_spec(&shuffled, scale, seed, 0))?;
    print_rows("local/warm", &shuffled, &warm);
    let warm_bytes = outcome_bytes(&shuffled, &warm);
    for (name, bytes) in &warm_bytes {
        let (_, reference_bytes) = reference
            .iter()
            .find(|(reference_name, _)| reference_name == name)
            .expect("same circuits");
        assert_eq!(
            bytes, reference_bytes,
            "{name}: warm rows must be byte-identical to the cold run"
        );
    }
    if let Response::JobDone { cache_hits, .. } = warm.end {
        assert_eq!(
            cache_hits,
            circuits.len() as u64,
            "the warm resubmission is served entirely from the cache"
        );
    }
    eprintln!("warm rows byte-identical, served from cache");
    drop(client);
    drop(connector);
    local_listener.join().expect("local listener");

    // 3. TCP transport: same server core, same bytes over a socket.
    let (tcp, shutdown) = TcpTransport::bind("127.0.0.1:0")?;
    let addr = tcp.local_addr()?;
    let tcp_listener = server.spawn_listener(tcp);
    eprintln!("resubmitting over TcpTransport at {addr}...");
    let mut tcp_client = ServeClient::new(StreamConnection::new(TcpStream::connect(addr)?));
    let over_tcp = tcp_client.run_job(&job_spec(&circuits, scale, seed, threads))?;
    print_rows("tcp", &circuits, &over_tcp);
    for ((name, bytes), (_, reference_bytes)) in
        outcome_bytes(&circuits, &over_tcp).iter().zip(&reference)
    {
        assert_eq!(
            bytes, reference_bytes,
            "{name}: the transport must not change a single byte"
        );
    }
    eprintln!("tcp rows byte-identical to the local transport's");
    drop(tcp_client);
    shutdown.shutdown();
    tcp_listener.join().expect("tcp listener");

    println!(
        "serve_demo: {} circuits, both transports, byte-identical rows, warm pass all cache hits",
        circuits.len()
    );
    Ok(())
}
